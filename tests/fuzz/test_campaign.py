"""Campaign acceptance: REPRO_JOBS-independence, catch + shrink end to end."""

import pytest

from repro.experiments.fuzz_campaign import (
    FuzzCampaignConfig,
    digest,
    run,
    shrink_failure,
)
from repro.fuzz.generator import GenConfig
from repro.fuzz.oracle import FuzzTrialConfig
from repro.fuzz.shrinker import load_reproducer
from repro.fuzz.oracle import run_trial
from repro.fuzz.workload import WorkloadConfig


def test_small_campaign_is_clean_and_deterministic():
    cfg = FuzzCampaignConfig(n_trials=6, seed=11)
    a, b = run(cfg), run(cfg)
    assert digest(a) == digest(b)
    assert a.all_ok
    assert {t.system for t in a.trials} == {"raft", "dynatune"}
    assert sum(t.n_completed for t in a.trials) > 100


def test_200_trial_campaign_clean_and_jobs_independent(monkeypatch):
    """The acceptance gate: >= 200 scenarios across {raft, dynatune},
    byte-identical for REPRO_JOBS=1 and REPRO_JOBS=4, all clean."""
    cfg = FuzzCampaignConfig(n_trials=200, seed=11)
    monkeypatch.setenv("REPRO_JOBS", "1")
    serial = run(cfg)
    monkeypatch.setenv("REPRO_JOBS", "4")
    parallel = run(cfg)
    assert digest(serial) == digest(parallel)
    assert serial.all_ok, [t.violations for t in serial.failures]
    assert len(serial.trials) == 200
    assert {t.system for t in serial.trials} == {"raft", "dynatune"}


def test_injected_bug_is_caught_and_shrinks_small(tmp_path):
    """Second acceptance gate: a planted commit-safety bug is detected and
    the shrunk reproducer has at most 5 steps."""
    cfg = FuzzCampaignConfig(
        n_trials=4,
        seed=11,
        inject="commit_rewrite",
        inject_at_ms=6_000.0,
        trial=FuzzTrialConfig(min_run_ms=9_000.0, settle_ms=4_000.0),
    )
    result = run(cfg)
    assert result.failures, "oracle failed to catch the injected bug"
    record = result.failures[0]
    path, final_steps = shrink_failure(result, record, out_dir=str(tmp_path))
    assert final_steps <= 5
    loaded_cfg, scenario, payload = load_reproducer(path)
    assert loaded_cfg.inject is None  # reproducers never carry the injection
    assert payload["meta"]["found_with_injected_bug"] == "commit_rewrite"
    assert len(scenario.steps) == final_steps
    # With the "bug" absent, the minimized trial is clean — exactly what
    # the regression harness will assert forever after.
    assert run_trial(loaded_cfg, scenario).violations == ()


def test_ack_before_sync_bug_is_caught_and_shrinks_small(tmp_path):
    """Durability acceptance gate: a lying persist barrier (acks leave
    before the disk write lands) is caught once the power loss collects,
    and the shrunk reproducer is small and clean without the bug."""
    cfg = FuzzCampaignConfig(
        n_trials=3,
        seed=11,
        inject="ack_before_sync",
        inject_at_ms=9_000.0,
        trial=FuzzTrialConfig(disk=True),
    )
    result = run(cfg)
    assert result.failures, "oracle failed to catch the lying persist barrier"
    assert any(
        "committed" in v or "linearizability" in v
        for rec in result.failures
        for v in rec.violations
    )
    record = result.failures[0]
    path, final_steps = shrink_failure(result, record, out_dir=str(tmp_path))
    assert final_steps <= 5
    loaded_cfg, scenario, payload = load_reproducer(path)
    assert loaded_cfg.inject is None  # reproducers never carry the injection
    assert loaded_cfg.disk  # ...but they do carry the storage backend
    assert payload["meta"]["found_with_injected_bug"] == "ack_before_sync"
    # With the "bug" absent, the minimized trial is clean: ack-after-sync
    # really is what stood between the cluster and the violation.
    assert run_trial(loaded_cfg, scenario).violations == ()


def test_stale_lease_bug_is_caught_and_shrinks_small(tmp_path):
    """Gray-failure acceptance gate: a broken quorum-freshness judgment
    (one chatty peer keeps a fenced-off leader's check-quorum and read
    lease alive) is invisible to every safety property — replicas never
    diverge — but the gray fuzz profile's read-only observer catches the
    stale lease reads as a linearizability violation, and the shrunk
    reproducer is small and clean without the bug."""
    cfg = FuzzCampaignConfig(
        n_trials=3,
        seed=11,
        inject="stale_lease_under_skew",
        gen=GenConfig(p_gray=0.6, p_clock_skew=0.6),
        trial=FuzzTrialConfig(
            lease_reads=True,
            workload=WorkloadConfig(
                read_fastpath=True,
                n_clients=4,
                read_only_clients=1,
                max_ops_per_client=120,
            ),
        ),
    )
    result = run(cfg)
    assert result.failures, "oracle failed to catch the stale-lease bug"
    assert all(
        v.startswith("linearizability:")
        for rec in result.failures
        for v in rec.violations
    ), "only the client-facing oracle should see stale lease reads"
    record = result.failures[0]
    path, final_steps = shrink_failure(result, record, out_dir=str(tmp_path))
    assert final_steps <= 5
    loaded_cfg, scenario, payload = load_reproducer(path)
    assert loaded_cfg.inject is None  # reproducers never carry the injection
    assert loaded_cfg.lease_reads  # ...but they do carry the serving knobs
    assert payload["meta"]["found_with_injected_bug"] == "stale_lease_under_skew"
    # With the "bug" absent, the minimized trial is clean: the quorum-th
    # freshest anchor (and its drift margin) really is what stood between
    # the fenced leader and the stale reads.
    assert run_trial(loaded_cfg, scenario).violations == ()


def test_campaign_digest_depends_on_seed():
    a = run(FuzzCampaignConfig(n_trials=3, seed=1))
    b = run(FuzzCampaignConfig(n_trials=3, seed=2))
    assert digest(a) != digest(b)


def test_campaign_config_validation():
    with pytest.raises(ValueError):
        FuzzCampaignConfig(n_trials=0)
    with pytest.raises(ValueError):
        FuzzCampaignConfig(systems=())
