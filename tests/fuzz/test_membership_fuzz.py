"""Fuzzing membership: zero-draw back-compat, generation, oracle knob."""

import dataclasses

from repro.fuzz.generator import GenConfig, ScenarioGen
from repro.fuzz.oracle import FuzzTrialConfig, run_trial
from repro.scenarios.scenario import Scenario
from repro.scenarios.steps import AddNode, RemoveNode

SEEDS = [3, 17, 2_718, 31_337]


def membership_steps(scenario):
    return [
        s for s in scenario.steps if isinstance(s, (AddNode, RemoveNode))
    ]


def test_membership_off_is_byte_identical():
    # The zero-draw guarantee: p_membership=0 (the default) must not
    # consume a single RNG draw, so every pre-membership scenario
    # regenerates exactly — goldens and reproducers stay valid.
    for seed in SEEDS:
        before = ScenarioGen(GenConfig()).generate(seed)
        after = ScenarioGen(GenConfig(p_membership=0.0)).generate(seed)
        assert after.to_json() == before.to_json()


def test_membership_generation_is_deterministic():
    cfg = GenConfig(p_membership=1.0)
    for seed in SEEDS:
        a = ScenarioGen(cfg).generate(seed)
        b = ScenarioGen(cfg).generate(seed)
        assert a.to_json() == b.to_json()
        assert membership_steps(a)


def test_generated_membership_is_well_formed():
    cfg = GenConfig(p_membership=1.0)
    for seed in SEEDS:
        scenario = ScenarioGen(cfg).generate(seed)
        steps = membership_steps(scenario)
        adds = [s for s in steps if isinstance(s, AddNode)]
        removes = [s for s in steps if isinstance(s, RemoveNode)]
        assert len(adds) == 1
        # The joiner gets a fresh name past the base cluster.
        assert adds[0].node == f"n{cfg.n_nodes + 1}"
        # A paired removal (when drawn) lands after the add.
        for r in removes:
            assert r.at_ms > adds[0].at_ms
        # Membership scenarios must survive the reproducer round-trip.
        loaded = Scenario.from_json(scenario.to_json())
        assert loaded.steps == scenario.steps


def test_gen_config_validates_membership_knobs():
    import pytest

    with pytest.raises(ValueError):
        GenConfig(p_membership=1.5)
    with pytest.raises(ValueError):
        GenConfig(membership_gap_range_ms=(5_000.0, 1_000.0))


def small_trial(**kwargs):
    kwargs.setdefault("n_nodes", 3)
    kwargs.setdefault("seed", 9)
    kwargs.setdefault("settle_ms", 4_000.0)
    kwargs.setdefault("min_run_ms", 10_000.0)
    return FuzzTrialConfig(**kwargs)


def test_oracle_membership_knob_gates_the_steps():
    scenario = Scenario(
        "grow-one",
        [AddNode(at_ms=2_000.0, node="n4")],
    )
    # Off (the default): the step is a traced no-op — what every existing
    # reproducer file implies.
    inert = run_trial(small_trial(), scenario)
    assert inert.ok
    assert inert.steps_skipped == 1 and inert.steps_applied == 0
    assert inert.config_commits == 0 and inert.nodes_added == 0
    # On: the joiner is added, caught up and promoted under the oracle.
    live = run_trial(small_trial(membership=True), scenario)
    assert live.ok
    assert live.steps_applied == 1
    assert live.config_commits == 2  # add_learner + promote
    assert live.nodes_added == 1


def test_oracle_counts_decommissions():
    scenario = Scenario("shrink-one", [RemoveNode(at_ms=2_000.0, node="n3")])
    result = run_trial(small_trial(membership=True), scenario)
    assert result.ok
    assert result.config_commits == 1
    assert result.nodes_removed == 1


def test_greedy_remove_bug_is_caught_by_the_membership_oracle():
    # Proof of life for the reconfiguration invariants: the planted
    # two-at-a-time removal must be caught, and only trials whose
    # scenario actually removes a node can trip it.
    scenario = Scenario("shrink-one", [RemoveNode(at_ms=2_000.0, node="n3")])
    cfg = small_trial(n_nodes=5, membership=True, inject="greedy_remove")
    result = run_trial(cfg, scenario)
    assert not result.ok
    assert any("config" in v for v in result.violations)
    # Without the membership step the bug is never triggered.
    calm = run_trial(cfg, Scenario("calm", []))
    assert calm.ok
