"""ScenarioGen properties: validity, round-trip fidelity, determinism."""

import dataclasses

import pytest

from repro.fuzz.generator import GenConfig, ScenarioGen
from repro.scenarios.scenario import Scenario

#: The satellite property sweep: 50 generator seeds.
SEEDS = list(range(1, 51))


@pytest.fixture(scope="module")
def gen() -> ScenarioGen:
    return ScenarioGen(GenConfig())


@pytest.mark.parametrize("seed", SEEDS)
def test_roundtrip_byte_identical_and_valid(gen, seed):
    scenario = gen.generate(seed)
    blob = scenario.to_json()
    back = Scenario.from_json(blob)
    assert back.to_json() == blob
    assert back.to_dict() == scenario.to_dict()
    # Valid against the cluster the campaign builds (constructors already
    # re-validated every step during from_dict).
    scenario.validate_against(set(gen.config.node_names))


def test_generation_is_deterministic(gen):
    for seed in (3, 17, 44):
        assert gen.generate(seed).to_json() == gen.generate(seed).to_json()


def test_seeds_produce_distinct_scenarios(gen):
    blobs = {gen.generate(seed).to_json() for seed in SEEDS}
    # Step-count and parameter draws make collisions astronomically
    # unlikely; near-total distinctness is the point of seeding.
    assert len(blobs) > 45


def test_step_counts_and_times_respect_config():
    cfg = GenConfig(min_steps=3, max_steps=5, horizon_ms=10_000.0)
    gen = ScenarioGen(cfg)
    for seed in SEEDS[:20]:
        scenario = gen.generate(seed)
        assert len(scenario.steps) >= cfg.min_steps
        for step in scenario.steps:
            # Primary steps land inside the horizon; a paired heal/recover
            # may trail its fault by up to 8 s.
            assert 0.0 <= step.at_ms <= cfg.horizon_ms + 8_000.0
            # JSON-friendly built-ins only (numpy scalars would break
            # byte-identical serialization across platforms).
            assert type(step.at_ms) is float


def test_generated_values_are_builtin_types(gen):
    for seed in SEEDS[:10]:
        for step in gen.generate(seed).steps:
            for field in dataclasses.fields(step):
                value = getattr(step, field.name)
                if isinstance(value, float):
                    assert type(value) is float, (seed, step.kind, field.name)


def test_config_roundtrip():
    cfg = GenConfig(n_nodes=7, horizon_ms=12_000.0, conflict_bias=0.8)
    assert GenConfig.from_dict(cfg.to_dict()) == cfg


def test_config_validation():
    with pytest.raises(ValueError):
        GenConfig(n_nodes=2)
    with pytest.raises(ValueError):
        GenConfig(min_steps=5, max_steps=3)
    with pytest.raises(ValueError):
        GenConfig(conflict_bias=1.5)
