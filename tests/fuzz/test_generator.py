"""ScenarioGen properties: validity, round-trip fidelity, determinism."""

import dataclasses

import pytest

from repro.fuzz.generator import GenConfig, ScenarioGen
from repro.scenarios.scenario import Scenario

#: The satellite property sweep: 50 generator seeds.
SEEDS = list(range(1, 51))


@pytest.fixture(scope="module")
def gen() -> ScenarioGen:
    return ScenarioGen(GenConfig())


@pytest.mark.parametrize("seed", SEEDS)
def test_roundtrip_byte_identical_and_valid(gen, seed):
    scenario = gen.generate(seed)
    blob = scenario.to_json()
    back = Scenario.from_json(blob)
    assert back.to_json() == blob
    assert back.to_dict() == scenario.to_dict()
    # Valid against the cluster the campaign builds (constructors already
    # re-validated every step during from_dict).
    scenario.validate_against(set(gen.config.node_names))


def test_generation_is_deterministic(gen):
    for seed in (3, 17, 44):
        assert gen.generate(seed).to_json() == gen.generate(seed).to_json()


def test_seeds_produce_distinct_scenarios(gen):
    blobs = {gen.generate(seed).to_json() for seed in SEEDS}
    # Step-count and parameter draws make collisions astronomically
    # unlikely; near-total distinctness is the point of seeding.
    assert len(blobs) > 45


def test_step_counts_and_times_respect_config():
    cfg = GenConfig(min_steps=3, max_steps=5, horizon_ms=10_000.0)
    gen = ScenarioGen(cfg)
    for seed in SEEDS[:20]:
        scenario = gen.generate(seed)
        assert len(scenario.steps) >= cfg.min_steps
        for step in scenario.steps:
            # Primary steps land inside the horizon; a paired heal/recover
            # may trail its fault by up to 8 s.
            assert 0.0 <= step.at_ms <= cfg.horizon_ms + 8_000.0
            # JSON-friendly built-ins only (numpy scalars would break
            # byte-identical serialization across platforms).
            assert type(step.at_ms) is float


def test_generated_values_are_builtin_types(gen):
    for seed in SEEDS[:10]:
        for step in gen.generate(seed).steps:
            for field in dataclasses.fields(step):
                value = getattr(step, field.name)
                if isinstance(value, float):
                    assert type(value) is float, (seed, step.kind, field.name)


def test_config_roundtrip():
    cfg = GenConfig(n_nodes=7, horizon_ms=12_000.0, conflict_bias=0.8)
    assert GenConfig.from_dict(cfg.to_dict()) == cfg
    gray = GenConfig(p_gray=0.6, p_clock_skew=0.4, gray_loss_range=(0.7, 0.9))
    assert GenConfig.from_dict(gray.to_dict()) == gray


def test_config_validation():
    with pytest.raises(ValueError):
        GenConfig(n_nodes=2)
    with pytest.raises(ValueError):
        GenConfig(min_steps=5, max_steps=3)
    with pytest.raises(ValueError):
        GenConfig(conflict_bias=1.5)
    with pytest.raises(ValueError):
        GenConfig(p_gray=1.5)
    with pytest.raises(ValueError):
        GenConfig(gray_loss_range=(0.9, 0.6))
    with pytest.raises(ValueError):
        GenConfig(clock_drift_max=1.0)


# --------------------------------------------------------------------- #
# gray-fault / clock-skew patterns
# --------------------------------------------------------------------- #


def _kinds(scenario):
    return [s["kind"] for s in scenario.to_dict()["steps"]]


def test_gray_and_skew_knobs_default_to_zero_draws(gen):
    """The zero-draw guarantee: with the knobs at their 0.0 defaults no
    gray/skew step ever appears AND the primary timeline is untouched —
    turning a knob on only *appends* pattern steps after the primaries
    every pre-existing seed already pins."""
    hot = ScenarioGen(GenConfig(p_gray=1.0, p_clock_skew=1.0))
    for seed in SEEDS[:15]:
        base = gen.generate(seed)
        assert not {"block_link", "gray_link", "set_clock"} & set(_kinds(base))
        spiced = hot.generate(seed)
        base_steps = base.to_dict()["steps"]
        assert spiced.to_dict()["steps"][: len(base_steps)] == base_steps


def test_gray_faults_are_present_and_well_shaped():
    cfg = GenConfig(p_gray=1.0)
    gen = ScenarioGen(cfg)
    split_seen = False
    for seed in SEEDS:
        steps = gen.generate(seed).to_dict()["steps"]
        gray = [s for s in steps if s["kind"] in ("block_link", "gray_link")]
        assert gray, f"seed {seed} drew no gray fault at p_gray=1.0"
        lo, hi = cfg.gray_window_range_ms
        for s in gray:
            assert lo <= s["duration_ms"] <= hi
            if s["kind"] == "gray_link":
                g_lo, g_hi = cfg.gray_loss_range
                # A gray link trickles — never loss 1.0 (that is a block).
                assert g_lo <= s["loss"] <= g_hi < 1.0
        # A gray split fences two concrete nodes with 2*(n-2) directed-
        # both blocks sharing one window.
        if len(gray) == 2 * (cfg.n_nodes - 2):
            fenced = {s["a"] for s in gray}
            assert len(fenced) == 2
            assert all(s["direction"] == "both" for s in gray)
            assert len({(s["at_ms"], s["duration_ms"]) for s in gray}) == 1
            split_seen = True
    assert split_seen, "no seed in the sweep produced a gray split"


def test_clock_skew_pattern_magnitudes_and_repair():
    cfg = GenConfig(p_clock_skew=1.0)
    gen = ScenarioGen(cfg)
    repaired = False
    for seed in SEEDS[:25]:
        steps = gen.generate(seed).to_dict()["steps"]
        skews = [s for s in steps if s["kind"] == "set_clock"]
        assert skews
        o_lo, o_hi = cfg.clock_offset_range_ms
        by_node = {}
        for s in skews:
            if s["offset_ms"] == 0.0 and s["drift"] == 0.0:
                # Repair: snaps an earlier skew on the same node back.
                assert s["at_ms"] > by_node[s["node"]]
                repaired = True
            else:
                assert o_lo <= abs(s["offset_ms"]) <= o_hi
                assert abs(s["drift"]) <= cfg.clock_drift_max
                by_node[s["node"]] = s["at_ms"]
    assert repaired, "no clock-skew repair seen across the sweep"


def test_gray_and_skew_scenarios_roundtrip():
    gen = ScenarioGen(GenConfig(p_gray=1.0, p_clock_skew=1.0))
    for seed in SEEDS[:10]:
        scenario = gen.generate(seed)
        blob = scenario.to_json()
        assert Scenario.from_json(blob).to_json() == blob
