"""Shrinker: ddmin + simplification against cheap synthetic oracles."""

import dataclasses

import pytest

from repro.fuzz.generator import GenConfig, ScenarioGen
from repro.fuzz.oracle import FuzzTrialConfig, TrialResult
from repro.fuzz.shrinker import (
    load_reproducer,
    reproducer_dict,
    shrink,
    write_reproducer,
)
from repro.scenarios.scenario import Scenario
from repro.scenarios.steps import Crash, Heal, Pause, Repeat, SetRtt


def fake_result(violations=()):
    return TrialResult(
        violations=tuple(violations),
        lin_undecided=False,
        n_ops=0,
        n_completed=0,
        n_open=0,
        steps_applied=0,
        steps_skipped=0,
        first_leader_ms=None,
        duration_ms=0.0,
        lin_configs=0,
    )


def crash_oracle(config, scenario):
    """Fails iff the timeline crashes n1 (everything else is noise)."""
    bad = any(s.kind == "crash" and s.node == "n1" for s in scenario.steps)
    return fake_result(["crashed n1"] if bad else [])


def noisy_scenario():
    return Scenario(
        "noisy",
        [
            SetRtt(at_ms=100.0, rtt_ms=200.0),
            Pause(at_ms=333.3, node="n2", duration_ms=900.0,
                  repeat=Repeat(every_ms=2_000.0, times=5)),
            Crash(at_ms=500.0, node="n1"),
            Heal(at_ms=700.0),
            Pause(at_ms=900.0, node="n3", duration_ms=400.0),
            SetRtt(at_ms=1_100.0, rtt_ms=50.0, pair=("n1", "n2")),
        ],
    )


def test_shrinks_to_single_essential_step():
    result = shrink(FuzzTrialConfig(), noisy_scenario(), oracle=crash_oracle)
    assert result.final_steps == 1
    assert result.scenario.steps[0].kind == "crash"
    assert result.scenario.steps[0].node == "n1"
    assert result.violations == ("crashed n1",)
    assert result.initial_steps == 6


def test_shrink_is_deterministic():
    a = shrink(FuzzTrialConfig(), noisy_scenario(), oracle=crash_oracle)
    b = shrink(FuzzTrialConfig(), noisy_scenario(), oracle=crash_oracle)
    assert a.scenario.to_json() == b.scenario.to_json()
    assert a.evaluations == b.evaluations


def test_shrink_simplifies_surviving_steps():
    def pause_oracle(config, scenario):
        bad = any(s.kind == "pause" for s in scenario.steps)
        return fake_result(["paused"] if bad else [])

    result = shrink(FuzzTrialConfig(), noisy_scenario(), oracle=pause_oracle)
    assert result.final_steps == 1
    (step,) = result.scenario.steps
    assert step.kind == "pause"
    assert step.repeat is None  # repeat dropped by simplification
    assert step.duration_ms <= 900.0
    assert step.at_ms == round(step.at_ms, -2)  # time snapped to the grid


def test_shrink_requires_a_failing_input():
    with pytest.raises(ValueError):
        shrink(FuzzTrialConfig(), noisy_scenario(), oracle=lambda c, s: fake_result())


def test_shrink_respects_eval_budget():
    calls = []

    def counting_oracle(config, scenario):
        calls.append(1)
        return crash_oracle(config, scenario)

    shrink(FuzzTrialConfig(), noisy_scenario(), oracle=counting_oracle, max_evals=10)
    # budget + the final re-verification run
    assert len(calls) <= 11


def test_reproducer_roundtrip_strips_injection(tmp_path):
    cfg = FuzzTrialConfig(system="dynatune", seed=42, inject="stale_apply")
    scenario = ScenarioGen(GenConfig()).generate(8)
    path = str(tmp_path / "repro.json")
    write_reproducer(path, cfg, scenario, ("boom",), meta={"trial_index": 3})
    loaded_cfg, loaded_scenario, payload = load_reproducer(path)
    assert loaded_cfg.inject is None
    assert loaded_cfg.system == "dynatune" and loaded_cfg.seed == 42
    assert loaded_scenario.to_json() == scenario.to_json()
    assert payload["violations_when_found"] == ["boom"]
    assert payload["meta"]["found_with_injected_bug"] == "stale_apply"
    assert payload["meta"]["trial_index"] == 3


def test_reproducer_dict_is_json_safe():
    import json

    cfg = FuzzTrialConfig()
    scenario = ScenarioGen(GenConfig()).generate(4)
    payload = reproducer_dict(cfg, scenario, ("v",))
    blob = json.dumps(payload, sort_keys=True)
    assert json.loads(blob) == payload


def test_load_rejects_unknown_format(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text('{"format": "not-a-reproducer"}')
    with pytest.raises(ValueError):
        load_reproducer(str(path))
