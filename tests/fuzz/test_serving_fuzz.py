"""Fuzzing the client-serving fast path: batching, pipelining, reads.

The fast paths *claim* linearizability — batched writes commit through the
same log, ReadIndex reads wait for a quorum-confirmed commit index, lease
reads ride a quorum-anchored lease.  These trials put each claim in front
of the Wing & Gong checker, including across a leader-isolating partition.
"""

from repro.fuzz.oracle import FuzzTrialConfig, run_trial
from repro.fuzz.workload import WorkloadConfig
from repro.scenarios.scenario import Scenario
from repro.scenarios.steps import Heal, Partition

SEEDS = [7, 101, 31_337]


def small_trial(**kwargs):
    kwargs.setdefault("n_nodes", 3)
    kwargs.setdefault("seed", 9)
    kwargs.setdefault("settle_ms", 4_000.0)
    kwargs.setdefault("min_run_ms", 10_000.0)
    return FuzzTrialConfig(**kwargs)


def leader_flip(name="flip-leader"):
    # Isolate whoever leads mid-run, then heal: exercises flush-on-step-
    # down, pipeline recovery and read-round failover under the oracle.
    return Scenario(
        name,
        [
            Partition(at_ms=3_000.0, groups=(("@leader",),)),
            Heal(at_ms=6_000.0),
        ],
    )


def read_heavy(**kwargs):
    kwargs.setdefault("read_fastpath", True)
    kwargs.setdefault("p_put", 0.4)
    kwargs.setdefault("p_get", 0.5)
    return WorkloadConfig(**kwargs)


def test_fastpath_off_is_the_default_and_counters_stay_zero():
    # Back-compat: every existing reproducer file implies all-off knobs,
    # and with them the fast-path coverage counters must stay at zero.
    cfg = small_trial()
    assert not cfg.batching and not cfg.pipelining and not cfg.lease_reads
    assert not cfg.workload.read_fastpath
    result = run_trial(cfg, Scenario("calm", []))
    assert result.ok
    assert result.batches_flushed == 0
    assert result.reads_readindex == 0 and result.reads_lease == 0


def test_trial_config_roundtrips_fastpath_knobs():
    cfg = small_trial(
        batching=True,
        pipelining=True,
        lease_reads=True,
        workload=read_heavy(),
    )
    loaded = FuzzTrialConfig.from_dict(cfg.to_dict())
    assert loaded == cfg
    assert loaded.workload.read_fastpath


def test_batched_pipelined_writes_stay_linearizable():
    for seed in SEEDS:
        cfg = small_trial(seed=seed, batching=True, pipelining=True)
        result = run_trial(cfg, leader_flip())
        assert result.ok, (seed, result.violations)
        assert result.batches_flushed > 0
        assert result.n_completed > 0


def test_readindex_reads_stay_linearizable_across_leader_flip():
    for seed in SEEDS:
        cfg = small_trial(
            seed=seed,
            batching=True,
            pipelining=True,
            workload=read_heavy(),
        )
        result = run_trial(cfg, leader_flip())
        assert result.ok, (seed, result.violations)
        assert result.reads_readindex > 0
        assert result.reads_lease == 0  # lease knob off: no lease serving


def test_lease_reads_stay_linearizable():
    # StaticPolicy publishes a lease bound from the first beat, so lease
    # serving engages once the term-start no-op commits.
    for seed in SEEDS:
        cfg = small_trial(
            seed=seed,
            batching=True,
            pipelining=True,
            lease_reads=True,
            workload=read_heavy(),
        )
        result = run_trial(cfg, leader_flip())
        assert result.ok, (seed, result.violations)
        assert result.reads_lease > 0


def test_lease_reads_under_dynatune_policy():
    # Dynatune's lease bound only exists after every path reports a tuned
    # Et; until then reads must fall back to ReadIndex, never go stale.
    cfg = small_trial(
        system="dynatune",
        batching=True,
        lease_reads=True,
        min_run_ms=14_000.0,
        workload=read_heavy(),
    )
    result = run_trial(cfg, leader_flip())
    assert result.ok, result.violations
    assert result.reads_lease + result.reads_readindex > 0
