"""Regression harness: every shrunk reproducer stays fixed forever.

Each ``tests/fuzz/regressions/*.json`` file is a minimal reproducer the
fuzz campaign once shrank out of a failing trial.  This module
auto-collects them: add a file, gain a tier-1 test that replays its
scenario against its recorded trial config and asserts the full oracle —
partition-safety properties and client-history linearizability — comes
back clean.

To promote a new find: run the campaign (it writes the shrunk reproducer
here by default), fix the bug it exposes, and commit the JSON together
with the fix.
"""

import glob
import os

import pytest

from repro.fuzz.oracle import run_trial
from repro.fuzz.shrinker import REPRODUCER_FORMAT, load_reproducer

REGRESSION_DIR = os.path.join(os.path.dirname(__file__), "regressions")
REPRODUCERS = sorted(glob.glob(os.path.join(REGRESSION_DIR, "*.json")))


def test_regression_corpus_is_seeded():
    # The corpus ships with at least the two development-era finds; an
    # accidentally emptied directory must fail loudly, not skip silently.
    assert len(REPRODUCERS) >= 2


@pytest.mark.parametrize(
    "path", REPRODUCERS, ids=[os.path.basename(p) for p in REPRODUCERS]
)
def test_reproducer_replays_clean(path):
    config, scenario, payload = load_reproducer(path)
    assert payload["format"] == REPRODUCER_FORMAT
    assert config.inject is None, "regression replays must not inject bugs"
    result = run_trial(config, scenario)
    assert result.violations == (), (
        f"{os.path.basename(path)} regressed:\n  " + "\n  ".join(result.violations)
    )
    assert not result.lin_undecided
    # The replay must actually exercise the system, not vacuously pass.
    assert result.n_ops > 0
    assert result.first_leader_ms is not None
