"""Compaction under the full fuzz oracle.

The shrunk kernel of every compaction fuzz find is the same shape: a
follower crashes, the cluster commits enough history that the leader
compacts past the lagger's match index, the follower returns and is
served an InstallSnapshot — and the client-facing history must stay
linearizable across the install while every safety property holds.
``LAGGING_FOLLOWER`` is that minimal timeline, pinned here as a regression
test (with the snapshot install *asserted*, so the test can never
silently degrade into exercising the plain append path).
"""

import dataclasses

from repro.fuzz.generator import GenConfig, ScenarioGen
from repro.fuzz.oracle import FuzzTrialConfig, run_trial
from repro.fuzz.workload import WorkloadConfig
from repro.scenarios.scenario import Scenario
from repro.scenarios.steps import Crash, Recover

#: The minimal compaction-pressure timeline (shrunk by hand from the
#: generator's lagging-follower pattern: ddmin cannot drop either step —
#: without the crash there is no lag, without the recover no install).
LAGGING_FOLLOWER = Scenario(
    "compaction-lagging-follower",
    [Crash(at_ms=1_500.0, node="n5"), Recover(at_ms=9_000.0, node="n5")],
    description="follower lags across a compacted prefix, returns via snapshot",
)

#: Busy enough that the history far outgrows the compaction threshold.
PRESSURE_WORKLOAD = WorkloadConfig(
    n_clients=3,
    n_keys=2,
    think_min_ms=10.0,
    think_max_ms=80.0,
    max_ops_per_client=120,
)


def pressure_config(system: str = "raft", **overrides) -> FuzzTrialConfig:
    base = FuzzTrialConfig(
        system=system,
        seed=7,
        compaction_threshold=30,
        compaction_margin=4,
        workload=PRESSURE_WORKLOAD,
    )
    return dataclasses.replace(base, **overrides) if overrides else base


def test_linearizable_across_snapshot_install():
    result = run_trial(pressure_config(), LAGGING_FOLLOWER)
    assert result.violations == ()
    assert not result.lin_undecided
    # The oracle only proves something if the snapshot path actually ran.
    assert result.compactions >= 1
    assert result.snapshots_installed >= 1
    assert result.n_completed > 50


def test_linearizable_across_snapshot_install_dynatune():
    result = run_trial(pressure_config("dynatune"), LAGGING_FOLLOWER)
    assert result.violations == ()
    assert result.snapshots_installed >= 1


def test_same_timeline_without_compaction_stays_on_append_path():
    """Differential control: identical timeline, compaction off — clean
    too, but via full log replay (no snapshot ever moves)."""
    result = run_trial(
        pressure_config(compaction_threshold=0), LAGGING_FOLLOWER
    )
    assert result.violations == ()
    assert result.compactions == 0
    assert result.snapshots_installed == 0


def test_trial_config_compaction_knobs_round_trip():
    cfg = pressure_config()
    assert FuzzTrialConfig.from_dict(cfg.to_dict()) == cfg
    # Old reproducer files (no compaction keys) load with compaction off.
    legacy = {
        k: v
        for k, v in cfg.to_dict().items()
        if k not in ("compaction_threshold", "compaction_margin")
    }
    assert FuzzTrialConfig.from_dict(legacy).compaction_threshold == 0


# --------------------------------------------------------------------- #
# generator pressure pattern
# --------------------------------------------------------------------- #


def test_generator_emits_lagging_follower_pattern():
    gen = ScenarioGen(GenConfig(p_compaction_lag=1.0))
    hit = 0
    for seed in range(40, 60):
        scenario = gen.generate(seed)
        crashes = [s for s in scenario.steps if isinstance(s, Crash)]
        recovers = [s for s in scenario.steps if isinstance(s, Recover)]
        # The forced pattern is the scenario's final two steps.
        tail_crash, tail_recover = scenario.steps[-2], scenario.steps[-1]
        assert isinstance(tail_crash, Crash) and isinstance(tail_recover, Recover)
        assert tail_crash.node == tail_recover.node != "@leader"
        lag = tail_recover.at_ms - tail_crash.at_ms
        assert 6_000.0 <= lag <= 15_000.0
        hit += 1
        assert crashes and recovers
        # Round-trips stay exact with the pattern present.
        assert Scenario.from_dict(scenario.to_dict()).to_dict() == scenario.to_dict()
    assert hit == 20


def test_pressure_knob_off_changes_nothing():
    """p_compaction_lag=0 consumes no draw: the primary steps are the
    byte-identical prefix of the pressure variant's output."""
    off = ScenarioGen(GenConfig())
    on = ScenarioGen(GenConfig(p_compaction_lag=1.0))
    for seed in range(100, 110):
        base = off.generate(seed)
        extended = on.generate(seed)
        assert [s.to_dict() for s in extended.steps[: len(base.steps)]] == [
            s.to_dict() for s in base.steps
        ]
        assert len(extended.steps) == len(base.steps) + 2


def test_gen_config_round_trips_with_lag_fields():
    cfg = GenConfig(p_compaction_lag=0.5, lag_range_ms=(5_000.0, 9_000.0))
    assert GenConfig.from_dict(cfg.to_dict()) == cfg
