"""Measurement extraction: episodes, leaderless intervals, rt matrices."""

import math

import numpy as np
import pytest

from repro.cluster.measurements import (
    LEADER_FAILURE_KIND,
    extract_failure_episodes,
    kth_smallest_series,
    leaderless_intervals,
    randomized_timeout_matrix,
    total_interval_length,
)
from repro.net.topology import ClockModel
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceLog


def synthetic_trace():
    t = TraceLog()
    t.record(0.0, "n1", "become_leader", term=1)
    t.record(100.0, "n1", LEADER_FAILURE_KIND)
    t.record(150.0, "n2", "election_timeout", randomized_timeout_ms=42.0)
    t.record(160.0, "n3", "election_timeout", randomized_timeout_ms=55.0)
    t.record(170.0, "n4", "election_timeout", randomized_timeout_ms=60.0)
    t.record(220.0, "n2", "become_leader", term=2)
    return t


def test_episode_extraction_basic():
    eps = extract_failure_episodes(synthetic_trace(), cluster_size=5)
    assert len(eps) == 1
    e = eps[0]
    assert e.failed_leader == "n1"
    assert e.detection_latency_ms == pytest.approx(50.0)
    assert e.ots_ms == pytest.approx(120.0)
    assert e.election_latency_ms == pytest.approx(70.0)
    assert e.detector == "n2"
    assert e.new_leader == "n2"
    assert e.randomized_timeout_at_detection_ms == 42.0
    assert e.resolved


def test_majority_detection_is_third_distinct_node():
    eps = extract_failure_episodes(synthetic_trace(), cluster_size=5)
    # quorum of 5 = 3; the dead leader counts as "lost" plus 2 detectors.
    assert eps[0].majority_detection_latency_ms == pytest.approx(60.0)


def test_unresolved_episode():
    t = TraceLog()
    t.record(0.0, "n1", "become_leader", term=1)
    t.record(100.0, "n1", LEADER_FAILURE_KIND)
    eps = extract_failure_episodes(t, cluster_size=3)
    assert len(eps) == 1
    assert not eps[0].resolved
    assert eps[0].ots_ms is None
    assert eps[0].election_latency_ms is None


def test_episodes_do_not_bleed_across_failures():
    t = synthetic_trace()
    t.record(1000.0, "n2", LEADER_FAILURE_KIND)
    t.record(1100.0, "n3", "election_timeout", randomized_timeout_ms=10.0)
    t.record(1200.0, "n3", "become_leader", term=3)
    eps = extract_failure_episodes(t, cluster_size=5)
    assert len(eps) == 2
    assert eps[0].new_leader == "n2"
    assert eps[1].detection_latency_ms == pytest.approx(100.0)
    assert eps[1].new_leader == "n3"


def test_leader_own_records_excluded():
    t = TraceLog()
    t.record(100.0, "n1", LEADER_FAILURE_KIND)
    # the failed leader itself timing out later must not count as detection
    t.record(150.0, "n1", "election_timeout")
    t.record(180.0, "n2", "election_timeout")
    eps = extract_failure_episodes(t, cluster_size=3)
    assert eps[0].detector == "n2"


def test_clock_model_applied_per_node():
    clock = ClockModel(
        offset_ms={"n1": 0.0, "n2": +30.0},
        read_noise_sigma_ms=0.0,
        _rng=np.random.default_rng(0),
    )
    t = TraceLog()
    t.record(100.0, "n1", LEADER_FAILURE_KIND)
    t.record(150.0, "n2", "election_timeout")
    t.record(200.0, "n2", "become_leader", term=2)
    eps = extract_failure_episodes(t, clock=clock, cluster_size=3)
    # n2's clock runs 30ms ahead: measured detection inflated by 30ms.
    assert eps[0].detection_latency_ms == pytest.approx(80.0)


# -- leaderless intervals ------------------------------------------------- #


def test_leaderless_intervals_basic():
    t = TraceLog()
    t.record(100.0, "n1", "become_leader", term=1)
    t.record(500.0, "n1", "step_down", term=1)
    t.record(800.0, "n2", "become_leader", term=2)
    iv = leaderless_intervals(t, t_start=0.0, t_end=1000.0)
    assert iv == [(0.0, 100.0), (500.0, 800.0)]
    assert total_interval_length(iv) == pytest.approx(400.0)


def test_leaderless_interval_open_at_end():
    t = TraceLog()
    t.record(100.0, "n1", "become_leader", term=1)
    t.record(300.0, "n1", "quorum_lost", term=1)
    iv = leaderless_intervals(t, t_start=0.0, t_end=1000.0)
    assert iv[-1] == (300.0, 1000.0)


def test_leaderless_takeover_without_gap():
    t = TraceLog()
    t.record(100.0, "n1", "become_leader", term=1)
    t.record(400.0, "n2", "become_leader", term=2)  # supersedes
    t.record(500.0, "n1", "step_down", term=1)  # old leader learns late
    iv = leaderless_intervals(t, t_start=0.0, t_end=1000.0)
    assert iv == [(0.0, 100.0)]  # no gap at the handover


def test_stall_pause_not_a_leadership_end():
    t = TraceLog()
    t.record(100.0, "n1", "become_leader", term=1)
    t.record(200.0, "n1", "stall_pause")
    t.record(210.0, "n1", "process_paused")
    iv = leaderless_intervals(t, t_start=0.0, t_end=1000.0)
    assert iv == [(0.0, 100.0)]


def test_harness_kill_is_a_leadership_end():
    t = TraceLog()
    t.record(100.0, "n1", "become_leader", term=1)
    t.record(200.0, "n1", LEADER_FAILURE_KIND)
    t.record(300.0, "n2", "become_leader", term=2)
    iv = leaderless_intervals(t, t_start=0.0, t_end=400.0)
    assert iv == [(0.0, 100.0), (200.0, 300.0)]


def test_non_leader_events_ignored():
    t = TraceLog()
    t.record(100.0, "n1", "become_leader", term=1)
    t.record(200.0, "n2", "step_down", term=0)  # not the leader
    iv = leaderless_intervals(t, t_start=0.0, t_end=400.0)
    assert iv == [(0.0, 100.0)]


# -- randomizedTimeout matrix ----------------------------------------------- #


def test_randomized_timeout_matrix_shape_and_values():
    t = TraceLog()
    for sec in (1000.0, 2000.0):
        for node, val in (("n1", 10.0), ("n2", 20.0)):
            t.record(sec, node, "rt_sample", value=val + sec)
    times, matrix = randomized_timeout_matrix(t, ["n1", "n2"])
    assert list(times) == [1000.0, 2000.0]
    assert matrix.shape == (2, 2)
    assert matrix[0, 0] == 1010.0
    assert matrix[1, 1] == 2020.0


def test_randomized_timeout_matrix_missing_samples_nan():
    t = TraceLog()
    t.record(1000.0, "n1", "rt_sample", value=5.0)
    times, matrix = randomized_timeout_matrix(t, ["n1", "n2"])
    assert math.isnan(matrix[0, 1])


def test_kth_smallest_series():
    vals = np.array([[5.0, 1.0, 3.0], [np.nan, 2.0, 4.0]])
    assert kth_smallest_series(vals, 1).tolist() == [1.0, 2.0]
    k2 = kth_smallest_series(vals, 2)
    assert k2[0] == 3.0 and k2[1] == 4.0
    k3 = kth_smallest_series(vals, 3)
    assert k3[0] == 5.0 and math.isnan(k3[1])  # only 2 finite values in row 1


def test_kth_smallest_validation():
    with pytest.raises(ValueError):
        kth_smallest_series(np.zeros((1, 1)), 0)
