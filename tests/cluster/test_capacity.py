"""CostModel accounting and sampling."""

import pytest

from repro.cluster.capacity import DEFAULT_COSTS_MS, CostModel
from repro.sim.loop import EventLoop


def test_charge_accumulates():
    m = CostModel({"op": 0.5})
    m.charge("n1", "op")
    m.charge("n1", "op", units=3)
    assert m.busy_ms["n1"] == pytest.approx(2.0)
    assert m.op_counts["op"] == 4


def test_unknown_kind_costs_nothing():
    m = CostModel({})
    m.charge("n1", "mystery")
    assert m.busy_ms["n1"] == 0.0
    assert m.op_counts["mystery"] == 1


def test_busy_by_kind():
    m = CostModel({"a": 1.0, "b": 2.0})
    m.charge("n1", "a")
    m.charge("n2", "b")
    assert m.busy_by_kind["a"] == 1.0
    assert m.busy_by_kind["b"] == 2.0


def test_default_cost_table_covers_heartbeat_path():
    for kind in ("heartbeat_send", "heartbeat_recv", "heartbeat_resp_recv", "tuning"):
        assert kind in DEFAULT_COSTS_MS


def test_sampling_percent_of_core():
    loop = EventLoop()
    m = CostModel({"op": 1.0})
    m.start_sampling(loop, ["n1"], interval_ms=1000.0)
    # 100 ops in the first second -> 100 ms busy -> 10% of one core.
    for i in range(100):
        loop.schedule(i * 5.0, lambda: m.charge("n1", "op"))
    loop.run_until(1000.0)
    assert len(m.samples) == 1
    assert m.samples[0].percent_of_core == pytest.approx(10.0)


def test_sampling_windows_are_deltas():
    loop = EventLoop()
    m = CostModel({"op": 1.0})
    m.start_sampling(loop, ["n1"], interval_ms=1000.0)
    loop.schedule(500.0, lambda: m.charge("n1", "op", units=100))
    loop.schedule(1500.0, lambda: m.charge("n1", "op", units=50))
    loop.run_until(2000.0)
    times, vals = m.utilization_series("n1")
    assert times == [1000.0, 2000.0]
    assert vals == pytest.approx([10.0, 5.0])


def test_sampling_interval_validation():
    with pytest.raises(ValueError):
        CostModel().start_sampling(EventLoop(), ["n1"], interval_ms=0.0)


def test_mean_utilization():
    loop = EventLoop()
    m = CostModel({"op": 1.0})
    m.start_sampling(loop, ["n1"], interval_ms=1000.0)
    loop.schedule(100.0, lambda: m.charge("n1", "op", units=100))
    loop.run_until(2000.0)
    assert m.mean_utilization("n1") == pytest.approx(5.0)
    assert m.mean_utilization("ghost") == 0.0


def test_saturated():
    m = CostModel({"op": 1.0}, cores=2.0)
    m.charge("n1", "op", units=2500)
    assert m.saturated("n1", wall_ms=1000.0)
    assert not m.saturated("n1", wall_ms=2000.0)
