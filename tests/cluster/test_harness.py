"""ClusterHarness: failure loops and samplers end-to-end."""

import pytest

from repro.cluster.harness import ClusterHarness
from repro.cluster.measurements import (
    LEADER_FAILURE_KIND,
    extract_failure_episodes,
    randomized_timeout_matrix,
)
from tests.conftest import make_raft_cluster


def test_kill_leader_once_returns_successor():
    c = make_raft_cluster(5)
    h = ClusterHarness(c)
    old = c.run_until_leader()
    new = h.kill_leader_once(sleep_ms=4000.0)
    assert new != old
    assert h.failures_injected == 1


def test_failure_loop_produces_resolvable_episodes():
    c = make_raft_cluster(5)
    h = ClusterHarness(c)
    h.run_leader_failure_loop(3, warmup_ms=2000.0, sleep_ms=4000.0, settle_ms=3000.0)
    eps = extract_failure_episodes(c.trace, cluster_size=5)
    assert len(eps) == 3
    assert all(e.resolved for e in eps)
    assert all(e.detection_latency_ms > 0 for e in eps)
    assert all(e.ots_ms >= e.detection_latency_ms for e in eps)


def test_failure_loop_validation():
    c = make_raft_cluster(3)
    with pytest.raises(ValueError):
        ClusterHarness(c).run_leader_failure_loop(0)


def test_failure_loop_kills_distinct_current_leaders():
    c = make_raft_cluster(5)
    h = ClusterHarness(c)
    h.run_leader_failure_loop(2, warmup_ms=2000.0, sleep_ms=4000.0, settle_ms=3000.0)
    kills = c.trace.of_kind(LEADER_FAILURE_KIND)
    assert len(kills) == 2
    # consecutive kills target the then-current (different) leader
    assert kills[0].node != kills[1].node


def test_rt_sampler_records_all_alive_nodes():
    c = make_raft_cluster(3)
    h = ClusterHarness(c)
    h.install_randomized_timeout_sampler(interval_ms=1000.0)
    c.run_until_leader()
    c.node("n1").pause() if c.leader() != "n1" else c.node("n2").pause()
    c.run_for(5000.0)
    times, matrix = randomized_timeout_matrix(c.trace, c.names)
    assert len(times) >= 4
    # the paused node contributes NaNs once asleep
    import numpy as np

    assert np.isnan(matrix[-1]).sum() == 1


def test_rtt_probe_tracks_schedule():
    c = make_raft_cluster(3, rtt_ms=20.0)
    h = ClusterHarness(c)
    h.install_rtt_probe(interval_ms=1000.0)
    c.loop.schedule(2500.0, lambda: c.network.set_all_rtt(80.0))
    c.run_for(5000.0)
    probes = c.trace.of_kind("rtt_probe")
    assert probes[0].get("rtt_ms") == pytest.approx(20.0)
    assert probes[-1].get("rtt_ms") == pytest.approx(80.0)
