"""Workloads: open-loop driver and the Fig. 5 fluid model."""

import numpy as np
import pytest

from repro.cluster.workload import (
    FluidWorkloadConfig,
    OpenLoopDriver,
    peak_throughput,
    run_rps_staircase,
)
from repro.raft.state_machine import kv_put
from tests.conftest import make_raft_cluster


# -- OpenLoopDriver --------------------------------------------------------- #


def test_open_loop_driver_submits_at_rate():
    c = make_raft_cluster(3)
    client = c.add_client("cl")
    c.run_until_leader()
    driver = OpenLoopDriver(
        c.loop, client, rps=100.0, rng=c.rngs.stream("load")
    )
    driver.start()
    c.run_for(5_000)
    driver.stop()
    assert driver.submitted == pytest.approx(500, rel=0.25)
    c.run_for(2_000)
    assert len(client.completed) >= driver.submitted * 0.95


def test_open_loop_driver_validation():
    c = make_raft_cluster(1)
    client = c.add_client("cl")
    with pytest.raises(ValueError):
        OpenLoopDriver(c.loop, client, rps=0.0, rng=c.rngs.stream("x"))


def test_open_loop_driver_custom_commands():
    c = make_raft_cluster(3)
    client = c.add_client("cl")
    c.run_until_leader()
    driver = OpenLoopDriver(
        c.loop,
        client,
        rps=50.0,
        rng=c.rngs.stream("load"),
        command_factory=lambda i: kv_put("counter", i),
    )
    driver.start()
    c.run_for(2_000)
    driver.stop()
    c.run_for(2_000)
    assert all(r.command.key == "counter" for r in client.completed)


# -- fluid model -------------------------------------------------------------- #


def test_fluid_config_validation():
    with pytest.raises(ValueError):
        FluidWorkloadConfig(service_cost_ms=0.0)
    with pytest.raises(ValueError):
        FluidWorkloadConfig(cores=0.0)
    with pytest.raises(ValueError):
        FluidWorkloadConfig(overhead_factor=0.9)
    with pytest.raises(ValueError):
        FluidWorkloadConfig(heartbeat_cpu_ms_per_s=-1.0)
    with pytest.raises(ValueError):
        FluidWorkloadConfig(service_cv2=-1.0)


def test_capacity_formula():
    cfg = FluidWorkloadConfig(
        service_cost_ms=0.29, cores=4.0, heartbeat_cpu_ms_per_s=12.8
    )
    assert cfg.capacity_rps == pytest.approx((4000.0 - 12.8) / 0.29)


def test_overhead_factor_reduces_capacity():
    base = FluidWorkloadConfig()
    slowed = FluidWorkloadConfig(overhead_factor=1.068)
    assert slowed.capacity_rps < base.capacity_rps
    assert slowed.capacity_rps / base.capacity_rps == pytest.approx(1 / 1.068)


def test_staircase_throughput_saturates_at_capacity():
    cfg = FluidWorkloadConfig()
    results = run_rps_staircase(
        cfg, levels=[5_000.0, 10_000.0, 15_000.0, 20_000.0], dwell_s=5.0,
        rng=np.random.default_rng(0),
    )
    peak = peak_throughput(results)
    assert peak == pytest.approx(cfg.capacity_rps, rel=0.02)
    # below the knee, throughput tracks offered load
    assert results[0].throughput_rps == pytest.approx(5_000.0, rel=0.05)


def test_staircase_latency_rises_with_load():
    cfg = FluidWorkloadConfig()
    results = run_rps_staircase(
        cfg, levels=[2_000.0, 8_000.0, 13_000.0, 15_000.0], dwell_s=5.0,
        rng=np.random.default_rng(0),
    )
    lats = [r.mean_latency_ms for r in results]
    assert lats == sorted(lats)
    assert lats[0] == pytest.approx(cfg.base_latency_ms, rel=0.1)
    assert lats[-1] > 2.0 * cfg.base_latency_ms  # overload blow-up


def test_staircase_backlog_persists_across_levels():
    cfg = FluidWorkloadConfig()
    over = cfg.capacity_rps * 1.2
    results = run_rps_staircase(
        cfg, levels=[over, over], dwell_s=5.0, rng=np.random.default_rng(0)
    )
    # second overloaded level inherits the backlog: latency keeps climbing
    assert results[1].mean_latency_ms > results[0].mean_latency_ms


def test_peak_throughput_empty():
    assert peak_throughput([]) == 0.0


def test_p99_at_least_mean():
    cfg = FluidWorkloadConfig()
    results = run_rps_staircase(
        cfg, levels=[12_000.0, 14_000.0], dwell_s=5.0, rng=np.random.default_rng(1)
    )
    for r in results:
        assert r.p99_latency_ms >= r.mean_latency_ms * 0.999
