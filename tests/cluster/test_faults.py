"""Fault injection: pause_for, crash/recover helpers, StallInjector."""

import numpy as np
import pytest

from repro.cluster.faults import StallInjector, StallProfile, crash, pause_for, recover_node
from repro.sim.process import ProcessState
from tests.conftest import make_raft_cluster


def test_pause_for_emits_kind_and_resumes():
    c = make_raft_cluster(3)
    c.run_until_leader()
    node = c.node("n1")
    pause_for(c.loop, node, 1000.0, kind="fault_leader_pause")
    assert node.state is ProcessState.PAUSED
    recs = c.trace.of_kind("fault_leader_pause")
    assert len(recs) == 1 and recs[0].node == "n1"
    c.run_for(1500.0)
    assert node.state is ProcessState.RUNNING


def test_pause_for_validation():
    c = make_raft_cluster(1)
    with pytest.raises(ValueError):
        pause_for(c.loop, c.node("n1"), 0.0)


def test_pause_for_tolerates_manual_resume():
    c = make_raft_cluster(3)
    node = c.node("n1")
    pause_for(c.loop, node, 5000.0)
    c.run_for(100.0)
    node.resume()
    c.run_for(6000.0)  # the scheduled resume must be a no-op
    assert node.state is ProcessState.RUNNING


def test_crash_and_recover_helpers_trace():
    c = make_raft_cluster(3)
    node = c.node("n2")
    crash(node)
    assert c.trace.of_kind("fault_crash")
    recover_node(node)
    assert c.trace.of_kind("fault_recover")
    assert node.alive


def test_stall_profile_validation():
    with pytest.raises(ValueError):
        StallProfile(mean_interval_ms=0.0)
    with pytest.raises(ValueError):
        StallProfile(duration_median_ms=0.0)
    with pytest.raises(ValueError):
        StallProfile(duration_sigma=-1.0)
    with pytest.raises(ValueError):
        StallProfile(duration_median_ms=100.0, max_duration_ms=50.0)


def test_stall_injector_produces_bounded_stalls():
    c = make_raft_cluster(3)
    profile = StallProfile(
        mean_interval_ms=2_000.0,
        duration_median_ms=50.0,
        duration_sigma=0.5,
        max_duration_ms=120.0,
    )
    injector = StallInjector(
        c.loop, list(c.nodes.values()), profile, c.rngs.stream, trace=c.trace
    )
    injector.install()
    c.run_until_leader()
    c.run_for(30_000)
    stalls = c.trace.of_kind("stall")
    assert injector.stall_count > 0
    assert len(stalls) == injector.stall_count
    durations = np.array([r.get("duration_ms") for r in stalls])
    assert durations.max() <= 120.0
    assert durations.min() > 0.0
    # All nodes ended the run alive (every stall resumed).
    assert all(n.alive for n in c.nodes.values())


def test_stall_injector_skips_non_running_nodes():
    c = make_raft_cluster(2)
    profile = StallProfile(mean_interval_ms=500.0, duration_median_ms=20.0,
                           duration_sigma=0.1, max_duration_ms=40.0)
    injector = StallInjector(c.loop, [c.node("n1")], profile, c.rngs.stream)
    injector.install()
    c.node("n1").crash()
    c.run_for(10_000)  # must not raise trying to pause a crashed node
    assert c.node("n1").state is ProcessState.CRASHED


def test_stalls_do_not_break_raft_with_default_timeout():
    """Stalls capped far below Et=1000 never trigger baseline elections."""
    from repro.cluster.builder import ClusterConfig, build_cluster
    from repro.dynatune.policy import StaticPolicy

    c = build_cluster(
        ClusterConfig(n_nodes=5, seed=2, rtt_ms=50.0),
        lambda name: StaticPolicy.raft_default(),
    )
    c.start()
    StallInjector(
        c.loop, list(c.nodes.values()), StallProfile(), c.rngs.stream
    ).install()
    c.run_until_leader()
    t0 = c.loop.now
    c.run_for(120_000)
    assert [r for r in c.trace.of_kind("election_start") if r.time > t0] == []


def test_pause_for_overlapping_calls_respect_latest_duration():
    """A stale resume timer from an earlier pause must not cut the latest
    pause short (generation-token guard)."""
    c = make_raft_cluster(3)
    node = c.node("n1")
    pause_for(c.loop, node, 1_000.0)  # resume timer fires at t+1000
    c.run_for(300.0)
    node.resume()  # manual wake at t+300
    pause_for(c.loop, node, 2_000.0)  # should sleep until t+2300
    c.run_for(1_000.0)  # t+1300: the FIRST timer has fired by now
    assert node.state is ProcessState.PAUSED
    c.run_for(1_200.0)  # t+2500: the second pause's own timer resumes it
    assert node.state is ProcessState.RUNNING


def test_pause_for_generation_survives_many_cycles():
    c = make_raft_cluster(3)
    node = c.node("n2")
    for _ in range(5):
        pause_for(c.loop, node, 400.0)
        c.run_for(100.0)
        node.resume()
        c.run_for(50.0)
    pause_for(c.loop, node, 5_000.0)
    c.run_for(2_000.0)  # every stale timer has fired
    assert node.state is ProcessState.PAUSED
    c.run_for(3_500.0)
    assert node.state is ProcessState.RUNNING
