"""Cluster builder: wiring, config validation, leader queries."""

import pytest

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.dynatune.policy import StaticPolicy
from tests.conftest import make_raft_cluster


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(n_nodes=0)
    with pytest.raises(ValueError):
        ClusterConfig(topology="lan-party")


def test_builder_names_and_links():
    c = make_raft_cluster(4)
    assert c.names == ["n1", "n2", "n3", "n4"]
    assert len(c.network.links()) == 12


def test_builder_aws_topology_sets_placement():
    c = build_cluster(
        ClusterConfig(n_nodes=5, topology="aws", seed=1),
        lambda name: StaticPolicy(),
    )
    assert c.placement is not None
    assert set(c.placement) == set(c.names)


def test_uniform_topology_has_no_placement():
    c = make_raft_cluster(3)
    assert c.placement is None


def test_cost_model_only_when_requested():
    assert make_raft_cluster(2).cost_model is None
    c = make_raft_cluster(2, with_cost_model=True)
    assert c.cost_model is not None


def test_leader_none_before_any_election():
    c = build_cluster(ClusterConfig(n_nodes=3, seed=1), lambda name: StaticPolicy())
    assert c.leader() is None


def test_run_until_leader_timeout_raises():
    # Cluster never started: no elections can happen.
    c = build_cluster(ClusterConfig(n_nodes=3, seed=1), lambda name: StaticPolicy())
    with pytest.raises(TimeoutError):
        c.run_until_leader(timeout_ms=100.0)


def test_leader_picks_highest_term_among_claimants():
    c = make_raft_cluster(5)
    old = c.run_until_leader()
    c.run_for(500)
    # Partition the old leader away; a new one rises at a higher term while
    # the old one still believes (until its quorum check fires).
    c.network.set_partitions([{old}, set(c.names) - {old}])
    new = c.run_until_leader(exclude=old, timeout_ms=20_000)
    assert c.leader() == new


def test_run_for_advances_clock():
    c = make_raft_cluster(2)
    t0 = c.loop.now
    c.run_for(1234.0)
    assert c.loop.now == t0 + 1234.0


def test_add_client_wires_links_both_ways():
    c = make_raft_cluster(3)
    client = c.add_client("cl", rtt_ms=30.0)
    assert c.network.link("cl", "n1").rtt_ms == pytest.approx(30.0)
    assert c.network.link("n1", "cl").rtt_ms == pytest.approx(30.0)
    assert client.cluster == c.names


def test_alive_nodes_excludes_paused():
    c = make_raft_cluster(3)
    c.node("n1").pause()
    assert len(c.alive_nodes()) == 2


def test_clock_knobs_validation():
    with pytest.raises(ValueError):
        ClusterConfig(n_nodes=3, clock_skew_ms=-1.0)
    with pytest.raises(ValueError):
        ClusterConfig(n_nodes=3, clock_drift=1.0)


def test_default_clocks_are_identity():
    c = make_raft_cluster(3)
    for name in c.names:
        clock = c.node(name).clock
        assert not clock.skewed
        assert clock.now() == c.loop.now


def test_clock_skew_knobs_build_bounded_per_node_clocks():
    c = make_raft_cluster(3, clock_skew_ms=80.0, clock_drift=0.01)
    offsets = set()
    for name in c.names:
        clock = c.node(name).clock
        assert abs(clock.offset_ms) <= 80.0
        assert abs(clock.drift) <= 0.01
        offsets.add(clock.offset_ms)
    # Per-node streams: the draws differ across nodes.
    assert len(offsets) > 1
    # Skewed clusters still elect — skew shifts timings, not correctness.
    assert c.run_until_leader(timeout_ms=20_000) is not None
