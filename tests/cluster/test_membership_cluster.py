"""Cluster-level membership: spawn, decommission, no-resurrection rules."""

import pytest

from repro.raft.state_machine import kv_put
from repro.sim.process import ProcessState
from tests.conftest import make_raft_cluster


def grow_by_one(c, name="n4"):
    leader = c.run_until_leader()
    c.spawn_node(name)
    assert c.node(leader).propose_config_change("add_learner", name)
    c.run_for(4_000)
    return leader


def test_spawn_node_wires_a_learner_into_the_fabric():
    c = make_raft_cluster(3)
    grow_by_one(c)
    node = c.node("n4")
    assert node.state is ProcessState.RUNNING
    assert "n4" in c.network.node_names()
    # Joined as a learner, auto-promoted once caught up.
    assert "n4" in c.node(c.leader()).membership.voters
    assert c.members() == ["n1", "n2", "n3", "n4"]


def test_spawn_node_rejects_reused_names():
    c = make_raft_cluster(3)
    with pytest.raises(ValueError):
        c.spawn_node("n2")


def test_committed_removal_decommissions_exactly_once():
    c = make_raft_cluster(3)
    c.enable_membership()
    leader = c.run_until_leader()
    victim = next(n for n in c.names if n != leader)
    assert c.node(leader).propose_config_change("remove", victim)
    c.run_for(4_000)
    assert c.node(victim).state is ProcessState.STOPPED
    assert victim not in c.network.node_names()
    assert victim not in c.members()
    # Every replica commits the entry, but the cluster tears the node
    # down once, not once per commit record.
    assert len(c.trace.of_kind("node_decommissioned")) == 1


def test_client_rotation_forgets_removed_servers():
    c = make_raft_cluster(3)
    c.enable_membership()
    client = c.add_client("cl")
    leader = c.run_until_leader()
    victim = next(n for n in c.names if n != leader)
    assert c.node(leader).propose_config_change("remove", victim)
    c.run_for(4_000)
    assert victim not in client.cluster
    for i in range(10):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(3_000)
    assert len(client.completed) == 10


def test_pending_traffic_never_resurrects_a_removed_node():
    c = make_raft_cluster(5)
    c.enable_membership()
    client = c.add_client("cl")
    leader = c.run_until_leader()
    victim = next(n for n in c.names if n != leader)
    # Keep replication traffic toward the victim in flight at removal time.
    for i in range(20):
        client.submit(kv_put(f"k{i}", i))
    assert c.node(leader).propose_config_change("remove", victim)
    c.run_for(10_000)
    node = c.node(victim)
    assert node.state is ProcessState.STOPPED
    # In-flight deliveries and armed timers drained without waking it:
    # stopped is terminal, and the fabric dropped sends to the dead name.
    assert node.role.name != "LEADER"
    assert len(client.completed) == 20


def test_crash_of_a_stopped_node_is_a_no_op():
    c = make_raft_cluster(3)
    c.enable_membership()
    leader = c.run_until_leader()
    victim = next(n for n in c.names if n != leader)
    assert c.node(leader).propose_config_change("remove", victim)
    c.run_for(4_000)
    node = c.node(victim)
    assert node.state is ProcessState.STOPPED
    node.crash()  # decommissioning is terminal: no state change
    assert node.state is ProcessState.STOPPED
    # Direct recovery of a decommissioned node is a programming error —
    # the scenario layer's Recover/Churn steps skip it with a traced
    # no-op instead of ever reaching this call.
    with pytest.raises(Exception, match="STOPPED"):
        node.recover()
    assert node.state is ProcessState.STOPPED


def test_leader_excludes_stopped_nodes():
    c = make_raft_cluster(3)
    c.enable_membership()
    leader = c.run_until_leader()
    assert c.node(leader).propose_config_change("remove", leader)
    c.run_for(6_000)
    new_leader = c.leader()
    assert new_leader is not None and new_leader != leader
