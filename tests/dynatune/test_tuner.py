"""Tuning formulas (§III-D): Et, K, h — unit + properties."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.dynatune.tuner import (
    required_heartbeats,
    tune_election_timeout,
    tune_heartbeat_interval,
)


# -- Et = mu + s*sigma ----------------------------------------------------- #


def test_et_formula():
    assert tune_election_timeout(100.0, 5.0, safety_factor=2.0) == 110.0


def test_et_zero_sigma():
    assert tune_election_timeout(100.0, 0.0, safety_factor=2.0) == 100.0


def test_et_floor():
    assert tune_election_timeout(0.0, 0.0, safety_factor=2.0, floor_ms=10.0) == 10.0


def test_et_ceiling():
    assert (
        tune_election_timeout(5000.0, 100.0, safety_factor=2.0, ceiling_ms=1000.0)
        == 1000.0
    )


def test_et_validation():
    with pytest.raises(ValueError):
        tune_election_timeout(-1.0, 0.0, safety_factor=2.0)
    with pytest.raises(ValueError):
        tune_election_timeout(1.0, -1.0, safety_factor=2.0)
    with pytest.raises(ValueError):
        tune_election_timeout(1.0, 1.0, safety_factor=-0.1)


# -- K = ceil(log_p(1-x)) -------------------------------------------------- #


def test_k_zero_loss_is_one():
    assert required_heartbeats(0.0, 0.999) == 1


def test_k_total_loss_clamped():
    assert required_heartbeats(1.0, 0.999, k_max=50) == 50


def test_k_paper_values():
    # x = 0.999: p=0.3 -> ceil(log(0.001)/log(0.3)) = ceil(5.74) = 6
    assert required_heartbeats(0.30, 0.999) == 6
    assert required_heartbeats(0.10, 0.999) == 3
    assert required_heartbeats(0.05, 0.999) == 3
    assert required_heartbeats(0.20, 0.999) == 5
    # tiny loss: a single heartbeat suffices
    assert required_heartbeats(0.001, 0.999) == 1


def test_k_validation():
    with pytest.raises(ValueError):
        required_heartbeats(0.5, 0.0)
    with pytest.raises(ValueError):
        required_heartbeats(0.5, 1.0)
    with pytest.raises(ValueError):
        required_heartbeats(-0.1, 0.999)
    with pytest.raises(ValueError):
        required_heartbeats(1.1, 0.999)


# -- h = Et / K ----------------------------------------------------------- #


def test_h_formula():
    assert tune_heartbeat_interval(600.0, 6) == 100.0


def test_h_floor():
    assert tune_heartbeat_interval(10.0, 100, floor_ms=1.0) == 1.0


def test_h_validation():
    with pytest.raises(ValueError):
        tune_heartbeat_interval(0.0, 1)
    with pytest.raises(ValueError):
        tune_heartbeat_interval(100.0, 0)


# -- properties ------------------------------------------------------------ #


@settings(max_examples=300)
@given(
    p=st.floats(min_value=0.0, max_value=0.999),
    x=st.floats(min_value=0.5, max_value=0.9999),
)
def test_k_achieves_arrival_probability(p, x):
    """The defining requirement: 1 - p^K >= x (unless clamped at k_max)."""
    k = required_heartbeats(p, x, k_max=10_000)
    assert 1.0 - p**k >= x - 1e-12


@settings(max_examples=300)
@given(
    p=st.floats(min_value=0.001, max_value=0.999),
    x=st.floats(min_value=0.5, max_value=0.9999),
)
def test_k_is_minimal(p, x):
    k = required_heartbeats(p, x, k_max=10_000)
    if k > 1:
        assert 1.0 - p ** (k - 1) < x + 1e-12


@settings(max_examples=200)
@given(
    p1=st.floats(min_value=0.0, max_value=0.99),
    p2=st.floats(min_value=0.0, max_value=0.99),
)
def test_k_monotone_in_loss(p1, p2):
    """More loss never needs fewer heartbeats."""
    lo, hi = sorted((p1, p2))
    assert required_heartbeats(lo, 0.999) <= required_heartbeats(hi, 0.999)


@settings(max_examples=200)
@given(
    mu=st.floats(min_value=0.0, max_value=1e4),
    sigma=st.floats(min_value=0.0, max_value=1e3),
    s=st.floats(min_value=0.0, max_value=10.0),
)
def test_et_monotone_in_inputs(mu, sigma, s):
    et = tune_election_timeout(mu, sigma, safety_factor=s, floor_ms=1.0)
    assert et >= max(mu, 1.0) - 1e-9
    bigger = tune_election_timeout(mu + 1.0, sigma, safety_factor=s, floor_ms=1.0)
    assert bigger >= et


@settings(max_examples=200)
@given(
    et=st.floats(min_value=1.0, max_value=1e5),
    k=st.integers(min_value=1, max_value=1000),
)
def test_h_times_k_covers_et(et, k):
    """K heartbeats at interval h span (almost exactly) one Et window."""
    h = tune_heartbeat_interval(et, k, floor_ms=1e-6)
    assert h * k == pytest.approx(et) or h == 1e-6  # unless floored


@settings(max_examples=100)
@given(x=st.floats(min_value=0.9, max_value=0.9999))
def test_k_at_boundary_loss_rates(x):
    assert required_heartbeats(0.0, x) == 1
    k_cap = 7
    assert required_heartbeats(1.0, x, k_max=k_cap) == k_cap


def test_k_exact_boundary_is_not_overshot():
    # p = 0.1, x = 0.999: p^3 = 1e-3 exactly -> K = 3, not 4.
    assert required_heartbeats(0.1, 0.999) == 3
    assert math.isclose(1 - 0.1**3, 0.999)


# -- tune_heartbeat metadata (floor clamp must not break K·h <= Et) -------- #


def test_tune_heartbeat_unclamped_reports_requested_k():
    from repro.dynatune.tuner import tune_heartbeat

    t = tune_heartbeat(600.0, 6, floor_ms=1.0)
    assert t.h_ms == 100.0
    assert t.requested_k == 6
    assert t.effective_k == 6
    assert not t.floor_clamped


def test_tune_heartbeat_floor_rederives_effective_k():
    from repro.dynatune.tuner import tune_heartbeat

    # Et/K = 0.2 ms < floor 1 ms: only 10 one-ms beats fit in 10 ms.
    t = tune_heartbeat(10.0, 50, floor_ms=1.0)
    assert t.h_ms == 1.0
    assert t.floor_clamped
    assert t.effective_k == 10
    assert t.effective_k * t.h_ms <= 10.0 + 1e-9


def test_tune_heartbeat_floor_above_et_caps_h_at_et():
    from repro.dynatune.tuner import tune_heartbeat

    # A floor larger than Et must not space heartbeats past the window.
    t = tune_heartbeat(5.0, 3, floor_ms=20.0)
    assert t.h_ms == 5.0
    assert t.effective_k == 1
    assert t.floor_clamped


def test_tune_heartbeat_validation():
    from repro.dynatune.tuner import tune_heartbeat

    with pytest.raises(ValueError):
        tune_heartbeat(100.0, 1, floor_ms=0.0)


@settings(max_examples=300)
@given(
    et=st.floats(min_value=0.5, max_value=1e5),
    k=st.integers(min_value=1, max_value=200),
    floor=st.floats(min_value=1e-3, max_value=1e3),
)
def test_heartbeats_always_fit_inside_et(et, k, floor):
    """The §III-D2 guarantee: effective_k heartbeats at h fit in one Et."""
    from repro.dynatune.tuner import tune_heartbeat

    t = tune_heartbeat(et, k, floor_ms=floor)
    assert t.h_ms <= et + 1e-9
    assert t.effective_k >= 1
    assert t.effective_k * t.h_ms <= et * (1.0 + 1e-9)
    if not t.floor_clamped:
        assert t.effective_k == k
