"""Dynatune end-to-end in live clusters: convergence and adaptation."""

import pytest

from repro.dynatune.config import DynatuneConfig
from repro.raft.types import Role
from tests.conftest import make_dynatune_cluster


def follower_policies(c, leader):
    return [c.node(n).policy for n in c.names if n != leader]


def test_followers_tune_et_to_rtt():
    c = make_dynatune_cluster(5, rtt_ms=100.0)
    leader = c.run_until_leader()
    c.run_for(8_000)
    for pol in follower_policies(c, leader):
        assert pol.tuned_et_ms is not None
        assert 95.0 <= pol.tuned_et_ms <= 115.0  # ≈ RTT + 2σ


def test_leader_applies_tuned_h_per_follower():
    c = make_dynatune_cluster(5, rtt_ms=100.0)
    leader = c.run_until_leader()
    c.run_for(8_000)
    lp = c.node(leader).policy
    for peer in c.node(leader).peers:
        applied = lp.applied_h_ms(peer)
        assert applied is not None
        assert 95.0 <= applied <= 115.0  # K = 1 at zero loss -> h ≈ Et


def test_tuning_tracks_rtt_change():
    c = make_dynatune_cluster(5, rtt_ms=50.0, dynatune=DynatuneConfig(max_list_size=60))
    leader = c.run_until_leader()
    c.run_for(6_000)
    before = [p.tuned_et_ms for p in follower_policies(c, leader)]
    assert all(et is not None and et < 70.0 for et in before)
    c.network.set_all_rtt(150.0)
    c.run_for(40_000)  # window (60 samples) fully turns over
    after = [p.tuned_et_ms for p in follower_policies(c, leader)]
    assert all(et is not None and et > 140.0 for et in after)


def test_loss_raises_heartbeat_rate():
    c = make_dynatune_cluster(5, rtt_ms=100.0, seed=9)
    leader = c.run_until_leader()
    c.run_for(8_000)
    lp = c.node(leader).policy
    h_before = [lp.heartbeat_interval_ms(p) for p in c.node(leader).peers]
    c.network.set_all_loss(0.25)
    c.run_for(60_000)
    h_after = [lp.heartbeat_interval_ms(p) for p in c.node(leader).peers]
    # 25% loss -> K = 5 -> h ≈ Et/5.
    assert min(h_before) > 90.0
    assert max(h_after) < 40.0


def test_detection_much_faster_than_raft_defaults():
    c = make_dynatune_cluster(5, rtt_ms=100.0)
    leader = c.run_until_leader()
    c.run_for(8_000)
    from repro.cluster.faults import pause_for
    from repro.cluster.measurements import LEADER_FAILURE_KIND

    pause_for(c.loop, c.node(leader), 6_000.0, kind=LEADER_FAILURE_KIND)
    c.run_until_leader(exclude=leader, timeout_ms=30_000)
    fail = c.trace.of_kind(LEADER_FAILURE_KIND)[0]
    det = c.trace.first_after(fail.time, kind="election_timeout")
    assert det is not None
    assert det.time - fail.time < 400.0  # vs ~1200 ms for Raft defaults


def test_no_unnecessary_elections_under_stable_loss():
    """§IV-C2: with h auto-tuned, heavy loss does not trigger elections."""
    c = make_dynatune_cluster(5, rtt_ms=200.0, loss=0.2, seed=3)
    c.run_until_leader()
    t0 = c.loop.now
    c.run_for(60_000)
    elections = [r for r in c.trace.of_kind("election_start") if r.time > t0]
    assert elections == []


def test_duplicated_heartbeats_do_not_skew_measurement():
    c = make_dynatune_cluster(5, rtt_ms=100.0, duplicate_p=0.3, seed=4)
    leader = c.run_until_leader()
    c.run_for(8_000)
    for pol in follower_policies(c, leader):
        # duplicates ignored: measured loss stays ~0, K stays 1.
        assert pol.measurement.duplicates_ignored > 0
        assert pol.measurement.loss_rate() < 0.02
        assert pol.tuned_et_ms is not None and pol.tuned_et_ms < 120.0


def test_fallback_after_leader_failure_then_retune():
    c = make_dynatune_cluster(5, rtt_ms=100.0)
    leader = c.run_until_leader()
    c.run_for(8_000)
    from repro.cluster.faults import pause_for
    from repro.cluster.measurements import LEADER_FAILURE_KIND

    pause_for(c.loop, c.node(leader), 6_000.0, kind=LEADER_FAILURE_KIND)
    new = c.run_until_leader(exclude=leader, timeout_ms=30_000)
    c.run_for(8_000)
    # Followers of the new leader re-measured and re-tuned.
    for pol in follower_policies(c, new):
        node_names = [n for n in c.names if n != new]
        assert pol.tuned_et_ms is None or pol.tuned_et_ms < 150.0
    new_followers = [
        c.node(n) for n in c.names if n != new and c.node(n).alive
    ]
    tuned = [n.policy.tuned_et_ms for n in new_followers]
    assert any(et is not None for et in tuned)


def test_split_vote_retry_uses_default_timeout():
    """After a fallback, the retry randomizedTimeout comes from the default
    1000 ms Et — visible in the election_timeout trace records."""
    c = make_dynatune_cluster(5, rtt_ms=100.0, seed=11)
    leader = c.run_until_leader()
    c.run_for(8_000)
    from repro.cluster.faults import pause_for

    fail_time = c.loop.now
    pause_for(c.loop, c.node(leader), 6_000.0)
    c.run_until_leader(exclude=leader, timeout_ms=30_000)
    timeouts = [
        r for r in c.trace.of_kind("election_timeout") if r.time >= fail_time
    ]
    # First detection used a tuned (small) randomizedTimeout...
    assert timeouts[0].get("randomized_timeout_ms") < 300.0
    # ...any later candidate-retry timeout used the fallback default range.
    retries = [r for r in timeouts if r.get("role") in ("candidate", "precandidate")]
    for r in retries:
        assert r.get("randomized_timeout_ms") >= 1000.0


def test_dynatune_cluster_remains_consistent():
    from repro.raft.state_machine import kv_put

    c = make_dynatune_cluster(5, rtt_ms=50.0)
    client = c.add_client("cl")
    c.run_until_leader()
    for i in range(20):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(5_000)
    assert len(client.completed) == 20
    snaps = [c.node(n).state_machine.snapshot() for n in c.names]
    assert all(s == snaps[0] for s in snaps)
