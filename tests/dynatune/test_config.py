"""DynatuneConfig validation."""

import pytest

from repro.dynatune.config import DynatuneConfig


def test_paper_defaults():
    cfg = DynatuneConfig()
    assert cfg.safety_factor == 2.0
    assert cfg.arrival_probability == 0.999
    assert cfg.min_list_size == 10
    assert cfg.max_list_size == 1000
    assert cfg.default_election_timeout_ms == 1000.0
    assert cfg.default_heartbeat_interval_ms == 100.0
    assert cfg.heartbeat_channel == "udp"
    assert cfg.fixed_k is None


@pytest.mark.parametrize(
    "kwargs",
    [
        {"safety_factor": -1.0},
        {"arrival_probability": 0.0},
        {"arrival_probability": 1.0},
        {"min_list_size": 0},
        {"max_list_size": 5, "min_list_size": 10},
        {"default_election_timeout_ms": 0.0},
        {"default_heartbeat_interval_ms": -1.0},
        {"et_floor_ms": 0.0},
        {"et_ceiling_ms": 5.0, "et_floor_ms": 10.0},
        {"h_floor_ms": 0.0},
        {"k_max": 0},
        {"fixed_k": 0},
        {"heartbeat_channel": "carrier-pigeon"},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        DynatuneConfig(**kwargs)


def test_fix_k_variant():
    cfg = DynatuneConfig(fixed_k=10)
    assert cfg.fixed_k == 10


def test_frozen():
    cfg = DynatuneConfig()
    with pytest.raises(Exception):
        cfg.safety_factor = 3.0  # type: ignore[misc]
