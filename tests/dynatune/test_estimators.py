"""Windowed estimators: incremental vs numpy reference — unit + properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dynatune.estimators import WindowedMeanStd, window_mean_std


def test_reference_empty():
    assert window_mean_std([]) == (0.0, 0.0)


def test_reference_single():
    mu, sigma = window_mean_std([5.0])
    assert mu == 5.0 and sigma == 0.0


def test_reference_known_values():
    mu, sigma = window_mean_std([1.0, 2.0, 3.0, 4.0])
    assert mu == pytest.approx(2.5)
    assert sigma == pytest.approx(np.std([1, 2, 3, 4]))


def test_windowed_empty():
    w = WindowedMeanStd(10)
    assert len(w) == 0
    assert w.mean() == 0.0 and w.std() == 0.0


def test_windowed_capacity_validation():
    with pytest.raises(ValueError):
        WindowedMeanStd(0)


def test_windowed_rejects_nonfinite():
    w = WindowedMeanStd(4)
    with pytest.raises(ValueError):
        w.push(float("nan"))
    with pytest.raises(ValueError):
        w.push(float("inf"))


def test_windowed_matches_reference_before_eviction():
    w = WindowedMeanStd(100)
    vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    for v in vals:
        w.push(v)
    assert w.mean_std() == pytest.approx(window_mean_std(vals))


def test_windowed_evicts_oldest():
    w = WindowedMeanStd(3)
    for v in (1.0, 2.0, 3.0, 4.0):
        w.push(v)
    assert len(w) == 3
    assert w.full
    assert list(w.values()) == [2.0, 3.0, 4.0]
    assert w.mean() == pytest.approx(3.0)


def test_windowed_reset():
    w = WindowedMeanStd(3)
    w.push(10.0)
    w.reset()
    assert len(w) == 0
    assert w.mean() == 0.0
    w.push(2.0)
    assert w.mean() == 2.0


def test_windowed_single_sample_zero_std():
    w = WindowedMeanStd(5)
    w.push(123.456)
    assert w.std() == 0.0


def test_windowed_constant_series_zero_std():
    w = WindowedMeanStd(10)
    for _ in range(100):
        w.push(100.0)
    assert w.std() == pytest.approx(0.0, abs=1e-9)


def test_values_order_oldest_first_across_wrap():
    w = WindowedMeanStd(4)
    for v in range(10):
        w.push(float(v))
    assert list(w.values()) == [6.0, 7.0, 8.0, 9.0]


def test_resync_bounds_drift():
    """After many pushes (incl. the periodic exact recompute) the running
    moments still match a fresh numpy computation."""
    w = WindowedMeanStd(50)
    rng = np.random.default_rng(0)
    vals = rng.normal(100.0, 3.0, size=10_000)
    for v in vals:
        w.push(float(v))
    ref_mu, ref_sigma = window_mean_std(vals[-50:])
    assert w.mean() == pytest.approx(ref_mu, rel=1e-9)
    assert w.std() == pytest.approx(ref_sigma, rel=1e-6)


@settings(max_examples=200)
@given(
    vals=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=60
    ),
    capacity=st.integers(min_value=1, max_value=20),
)
def test_windowed_equals_numpy_reference(vals, capacity):
    w = WindowedMeanStd(capacity)
    for v in vals:
        w.push(v)
    window = vals[-capacity:]
    ref_mu, ref_sigma = window_mean_std(window)
    assert w.mean() == pytest.approx(ref_mu, rel=1e-9, abs=1e-9)
    assert w.std() == pytest.approx(ref_sigma, rel=1e-6, abs=1e-6)


@settings(max_examples=100)
@given(
    vals=st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=2, max_size=40)
)
def test_std_nonnegative_and_bounded_by_range(vals):
    w = WindowedMeanStd(100)
    for v in vals:
        w.push(v)
    assert w.std() >= 0.0
    assert w.std() <= (max(vals) - min(vals)) + 1e-9
