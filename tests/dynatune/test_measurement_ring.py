"""PathMeasurement ID ring: O(1) monotone path vs the seed insort semantics.

The seed kept a plain sorted list with ``insort`` + ``pop(0)``; the ring
(list + head offset) must reproduce its observable behaviour exactly —
window contents, duplicate counting, loss rate, and the quirky
"insert-below-window then immediately evict" case — while the monotone
path stays allocation- and shift-free.
"""

import bisect

import numpy as np
import pytest

from repro.dynatune.measurement import PathMeasurement


class SeedIds:
    """Reference implementation: the seed's insort-based ID list."""

    def __init__(self, max_list_size: int) -> None:
        self.max = max_list_size
        self.ids: list[int] = []
        self.dups = 0

    def record(self, seq: int) -> bool:
        pos = bisect.bisect_left(self.ids, seq)
        if pos < len(self.ids) and self.ids[pos] == seq:
            self.dups += 1
            return False
        self.ids.insert(pos, seq)
        if len(self.ids) > self.max:
            self.ids.pop(0)
        return True

    def loss_rate(self) -> float:
        if len(self.ids) < 2:
            return 0.0
        expected = self.ids[-1] - self.ids[0] + 1
        p = 1.0 - len(self.ids) / expected
        return p if p > 0.0 else 0.0


@pytest.mark.parametrize("seed", [0, 1, 7, 1234])
def test_ring_matches_seed_reference_under_chaos(seed):
    """Random mix of in-order, reordered, duplicate, and ancient IDs."""
    rng = np.random.default_rng(seed)
    m = PathMeasurement(min_list_size=1, max_list_size=50)
    ref = SeedIds(50)
    next_seq = 1
    recent: list[int] = []
    for _ in range(3_000):
        roll = rng.random()
        if roll < 0.70:
            seq = next_seq
            next_seq += 1
        elif roll < 0.85 and recent:
            seq = recent[int(rng.integers(0, len(recent)))]  # duplicate
        elif roll < 0.95:
            seq = max(1, next_seq - int(rng.integers(1, 8)))  # reordered
        else:
            seq = max(1, next_seq - int(rng.integers(40, 120)))  # ancient
        recent.append(seq)
        if len(recent) > 30:
            recent.pop(0)
        assert m.record_id(seq) == ref.record(seq)
        assert m.ids() == ref.ids
        assert m.id_count == len(ref.ids)
        assert m.loss_rate() == ref.loss_rate()
    assert m.duplicates_ignored == ref.dups


def test_monotone_eviction_compacts_dead_prefix():
    m = PathMeasurement(min_list_size=1, max_list_size=10)
    for i in range(1, 200):
        m.record_id(i)
    assert m.id_count == 10
    assert m.ids() == list(range(190, 200))
    # The backing list must stay bounded (dead prefix compacted away).
    assert len(m._ids) <= 21


def test_below_window_insert_with_full_window_is_evicted_immediately():
    # Seed quirk: an ID older than the whole full window is inserted then
    # evicted by the size bound — reported True, not counted a duplicate.
    m = PathMeasurement(min_list_size=1, max_list_size=5)
    for i in range(10, 16):
        m.record_id(i)
    assert m.ids() == [11, 12, 13, 14, 15]
    assert m.record_id(3) is True
    assert m.ids() == [11, 12, 13, 14, 15]
    assert m.duplicates_ignored == 0


def test_reset_clears_ring_and_ready():
    m = PathMeasurement(min_list_size=2, max_list_size=10)
    for i in range(1, 30):
        m.record_id(i)
    m.record_rtt(10.0)
    m.record_rtt(12.0)
    assert m.ready
    m.reset()
    assert m.id_count == 0
    assert m.ids() == []
    assert m.loss_rate() == 0.0
    assert not m.ready
    m.record_id(5)  # ring restarts cleanly after reset
    assert m.ids() == [5]


def test_ready_tracks_min_list_size():
    m = PathMeasurement(min_list_size=3, max_list_size=10)
    assert not m.ready
    m.record_rtt(1.0)
    m.record_rtt(2.0)
    assert not m.ready
    m.record_rtt(3.0)
    assert m.ready
    # Stays ready while the (full) window slides.
    for _ in range(50):
        m.record_rtt(4.0)
    assert m.ready
