"""PathMeasurement: the RTTs/ids lists of §III-C — unit + properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dynatune.measurement import PathMeasurement


def test_validation():
    with pytest.raises(ValueError):
        PathMeasurement(min_list_size=0)
    with pytest.raises(ValueError):
        PathMeasurement(min_list_size=10, max_list_size=5)


def test_not_ready_until_min_list_size():
    m = PathMeasurement(min_list_size=3, max_list_size=10)
    for i in range(2):
        m.record_rtt(100.0)
        assert not m.ready
    m.record_rtt(100.0)
    assert m.ready


def test_negative_rtt_rejected():
    with pytest.raises(ValueError):
        PathMeasurement().record_rtt(-1.0)


def test_rtt_stats():
    m = PathMeasurement(min_list_size=1)
    for v in (90.0, 100.0, 110.0):
        m.record_rtt(v)
    mu, sigma = m.rtt_mean_std()
    assert mu == pytest.approx(100.0)
    assert sigma == pytest.approx(8.164965, rel=1e-5)


def test_loss_rate_no_data():
    m = PathMeasurement()
    assert m.loss_rate() == 0.0
    m.record_id(5)
    assert m.loss_rate() == 0.0  # single id defines no span


def test_loss_rate_contiguous_ids_zero():
    m = PathMeasurement()
    for i in range(1, 11):
        m.record_id(i)
    assert m.loss_rate() == 0.0


def test_loss_rate_with_gaps():
    m = PathMeasurement()
    for i in (1, 2, 4, 5, 10):  # span 10, received 5
        m.record_id(i)
    assert m.loss_rate() == pytest.approx(0.5)


def test_out_of_order_ids_inserted_sorted():
    m = PathMeasurement()
    for i in (5, 1, 3, 2, 4):
        m.record_id(i)
    assert m.loss_rate() == 0.0  # complete despite reordering
    assert m.id_count == 5


def test_duplicate_ids_ignored():
    m = PathMeasurement()
    assert m.record_id(7) is True
    assert m.record_id(7) is False
    assert m.id_count == 1
    assert m.duplicates_ignored == 1


def test_id_window_slides_at_max_list_size():
    m = PathMeasurement(min_list_size=1, max_list_size=5)
    for i in range(1, 11):
        m.record_id(i)
    assert m.id_count == 5
    # window now covers ids 6..10 (oldest evicted)
    assert m.loss_rate() == 0.0


def test_rtt_window_bounded():
    m = PathMeasurement(min_list_size=1, max_list_size=4)
    for i in range(10):
        m.record_rtt(float(i))
    assert m.rtt_count == 4
    mu, _ = m.rtt_mean_std()
    assert mu == pytest.approx((6 + 7 + 8 + 9) / 4)


def test_reset_discards_everything():
    m = PathMeasurement(min_list_size=2)
    m.record_rtt(1.0)
    m.record_rtt(2.0)
    m.record_id(1)
    m.reset()
    assert not m.ready
    assert m.rtt_count == 0
    assert m.id_count == 0
    assert m.loss_rate() == 0.0


# -- properties ---------------------------------------------------------- #


@settings(max_examples=200)
@given(ids=st.lists(st.integers(min_value=1, max_value=500), min_size=2, max_size=100))
def test_loss_rate_always_in_unit_interval(ids):
    m = PathMeasurement()
    for i in ids:
        m.record_id(i)
    assert 0.0 <= m.loss_rate() < 1.0


@settings(max_examples=200)
@given(
    ids=st.sets(st.integers(min_value=1, max_value=300), min_size=2, max_size=100),
    order_seed=st.randoms(use_true_random=False),
)
def test_loss_rate_independent_of_arrival_order(ids, order_seed):
    """Reordering (partially synchronous network) must not change the
    measured loss rate (§III-C2)."""
    ids = list(ids)
    m1 = PathMeasurement()
    for i in sorted(ids):
        m1.record_id(i)
    shuffled = list(ids)
    order_seed.shuffle(shuffled)
    m2 = PathMeasurement()
    for i in shuffled:
        m2.record_id(i)
    assert m1.loss_rate() == pytest.approx(m2.loss_rate())


@settings(max_examples=100)
@given(
    present=st.sets(st.integers(min_value=1, max_value=200), min_size=2, max_size=150),
    dups=st.lists(st.integers(min_value=1, max_value=200), max_size=30),
)
def test_duplicates_never_change_loss_rate(present, dups):
    m1 = PathMeasurement()
    for i in sorted(present):
        m1.record_id(i)
    base = m1.loss_rate()
    for d in dups:
        if d in present:
            m1.record_id(d)
    assert m1.loss_rate() == pytest.approx(base)


@settings(max_examples=100)
@given(st.data())
def test_loss_rate_matches_true_bernoulli_thinning(data):
    """Feeding ids 1..n with every k-th dropped yields p ≈ dropped/n."""
    n = data.draw(st.integers(min_value=20, max_value=300))
    drop = data.draw(st.sets(st.integers(min_value=2, max_value=n - 1), max_size=n // 2))
    m = PathMeasurement()
    received = [i for i in range(1, n + 1) if i not in drop]
    for i in received:
        m.record_id(i)
    expected = 1.0 - len(received) / n
    assert m.loss_rate() == pytest.approx(expected)
