"""Policies in isolation: Static (Raft/Raft-Low), Dynatune, Fix-K."""

import pytest

from repro.dynatune.config import DynatuneConfig
from repro.dynatune.metadata import HeartbeatMeta, HeartbeatResponseMeta
from repro.dynatune.policy import DynatunePolicy, StaticPolicy


# -- StaticPolicy ----------------------------------------------------------- #


def test_static_defaults():
    p = StaticPolicy.raft_default()
    assert p.election_timeout_ms(None) == 1000.0
    assert p.election_timeout_ms("leader") == 1000.0
    assert p.heartbeat_interval_ms("any") == 100.0
    assert p.heartbeat_channel == "tcp"


def test_static_raft_low_is_one_tenth():
    p = StaticPolicy.raft_low()
    assert p.election_timeout_ms(None) == 100.0
    assert p.heartbeat_interval_ms("x") == 10.0


def test_static_no_metadata():
    p = StaticPolicy.raft_default()
    assert p.heartbeat_meta("f", 0.0) is None
    assert p.on_heartbeat("l", None, 0.0) is None


def test_static_validation():
    with pytest.raises(ValueError):
        StaticPolicy(0.0, 100.0)
    with pytest.raises(ValueError):
        StaticPolicy(100.0, 0.0)


# -- DynatunePolicy: leader half --------------------------------------------- #


def test_leader_half_assigns_sequential_ids():
    p = DynatunePolicy()
    metas = [p.heartbeat_meta("f1", float(t)) for t in range(3)]
    assert [m.seq for m in metas] == [1, 2, 3]
    # independent sequence per follower path
    assert p.heartbeat_meta("f2", 0.0).seq == 1


def test_leader_half_timestamps_sends():
    p = DynatunePolicy()
    assert p.heartbeat_meta("f", 123.5).send_ts == 123.5


def test_leader_half_measures_rtt_from_echo():
    p = DynatunePolicy()
    meta = p.heartbeat_meta("f", 100.0)
    p.on_heartbeat_response(
        "f", HeartbeatResponseMeta(echo_seq=meta.seq, echo_ts=meta.send_ts), 150.0
    )
    nxt = p.heartbeat_meta("f", 200.0)
    assert nxt.rtt_sample_ms == pytest.approx(50.0)
    assert nxt.rtt_sample_seq == 1


def test_leader_half_ignores_negative_rtt():
    p = DynatunePolicy()
    p.on_heartbeat_response("f", HeartbeatResponseMeta(echo_seq=1, echo_ts=500.0), 100.0)
    assert p.heartbeat_meta("f", 200.0).rtt_sample_ms is None


def test_leader_half_applies_piggybacked_h():
    p = DynatunePolicy()
    assert p.heartbeat_interval_ms("f") == 100.0  # default
    p.on_heartbeat_response(
        "f", HeartbeatResponseMeta(echo_seq=1, echo_ts=0.0, tuned_h_ms=42.0), 1.0
    )
    assert p.heartbeat_interval_ms("f") == 42.0


def test_leader_half_rejects_h_no_follower_could_tune():
    """An h below min(h_floor, et_floor) cannot come from tune_heartbeat;
    the leader ignores it (storm guard) rather than clamping it *up*,
    which would space heartbeats past the follower's election window."""
    p = DynatunePolicy(DynatuneConfig(h_floor_ms=5.0))
    p.on_heartbeat_response(
        "f", HeartbeatResponseMeta(echo_seq=1, echo_ts=0.0, tuned_h_ms=0.001), 1.0
    )
    assert p.heartbeat_interval_ms("f") == p.config.default_heartbeat_interval_ms


def test_become_leader_resets_paths():
    p = DynatunePolicy()
    p.heartbeat_meta("f", 0.0)
    p.on_become_leader(10.0)
    assert p.heartbeat_meta("f", 20.0).seq == 1  # sequence restarted


# -- DynatunePolicy: follower half -------------------------------------------- #


def feed(p, leader, n, *, rtt=100.0, start_seq=1, now=0.0):
    """Deliver n heartbeats with fresh RTT samples; returns last response."""
    resp = None
    for i in range(n):
        meta = HeartbeatMeta(
            seq=start_seq + i,
            send_ts=now + i,
            rtt_sample_ms=rtt,
            rtt_sample_seq=start_seq + i,
        )
        resp = p.on_heartbeat(leader, meta, now + i)
    return resp


def test_follower_defaults_until_min_list_size():
    cfg = DynatuneConfig(min_list_size=5)
    p = DynatunePolicy(cfg)
    feed(p, "L", 4)
    assert p.election_timeout_ms("L") == cfg.default_election_timeout_ms
    assert p.tuned_et_ms is None
    feed(p, "L", 1, start_seq=5)
    assert p.tuned_et_ms is not None


def test_follower_tunes_et_to_mu_plus_s_sigma():
    p = DynatunePolicy(DynatuneConfig(min_list_size=5))
    feed(p, "L", 10, rtt=100.0)
    # constant RTT -> sigma = 0 -> Et = 100
    assert p.election_timeout_ms("L") == pytest.approx(100.0)


def test_follower_piggybacks_h():
    p = DynatunePolicy(DynatuneConfig(min_list_size=3))
    resp = feed(p, "L", 5, rtt=100.0)
    assert resp is not None
    assert resp.tuned_h_ms == pytest.approx(100.0)  # K=1 at zero loss


def test_follower_echoes_ts_and_seq():
    p = DynatunePolicy()
    meta = HeartbeatMeta(seq=9, send_ts=77.0)
    resp = p.on_heartbeat("L", meta, 80.0)
    assert resp.echo_seq == 9
    assert resp.echo_ts == 77.0


def test_follower_detects_loss_and_raises_k():
    p = DynatunePolicy(DynatuneConfig(min_list_size=5))
    # every other heartbeat lost: ids 1,3,5,... -> p = 0.5 -> K = 10
    for i in range(40):
        meta = HeartbeatMeta(
            seq=1 + 2 * i, send_ts=float(i), rtt_sample_ms=100.0, rtt_sample_seq=i + 1
        )
        p.on_heartbeat("L", meta, float(i))
    # 1 - 0.5^K >= 0.999 -> K = 10 -> h = 100/10
    assert p.tuned_h_ms == pytest.approx(10.0, rel=0.1)


def test_stale_rtt_samples_recorded_once():
    p = DynatunePolicy(DynatuneConfig(min_list_size=1))
    for i in range(5):  # same rtt_sample_seq repeated (lost responses)
        meta = HeartbeatMeta(seq=i + 1, send_ts=float(i), rtt_sample_ms=100.0, rtt_sample_seq=1)
        p.on_heartbeat("L", meta, float(i))
    assert p.measurement.rtt_count == 1


def test_fallback_on_election_timeout():
    p = DynatunePolicy(DynatuneConfig(min_list_size=3))
    feed(p, "L", 5)
    assert p.tuned_et_ms is not None
    p.on_election_timeout(100.0)
    assert p.tuned_et_ms is None
    assert p.election_timeout_ms("L") == 1000.0
    assert p.measurement.rtt_count == 0
    assert p.fallbacks == 1


def test_leader_change_resets_measurement():
    p = DynatunePolicy(DynatuneConfig(min_list_size=3))
    feed(p, "L1", 5)
    assert p.tuned_et_ms is not None
    p.on_leader_change("L2", 50.0)
    assert p.tuned_et_ms is None
    assert p.measurement.rtt_count == 0
    # Et for the old leader also reverts to default.
    assert p.election_timeout_ms("L1") == 1000.0


def test_heartbeat_from_unexpected_leader_restarts_measurement():
    p = DynatunePolicy(DynatuneConfig(min_list_size=2))
    feed(p, "L1", 3)
    # heartbeat from a different leader without an explicit change callback
    meta = HeartbeatMeta(seq=1, send_ts=0.0, rtt_sample_ms=50.0, rtt_sample_seq=1)
    p.on_heartbeat("L2", meta, 0.0)
    assert p.measurement.rtt_count == 1  # only the new leader's sample


def test_heartbeat_without_meta_returns_none():
    p = DynatunePolicy()
    p.on_leader_change("L", 0.0)
    assert p.on_heartbeat("L", None, 0.0) is None


# -- Fix-K variant ------------------------------------------------------------ #


def test_fix_k_pins_heartbeat_count():
    p = DynatunePolicy(DynatuneConfig(min_list_size=3, fixed_k=10))
    feed(p, "L", 5, rtt=200.0)
    # Et tunes to 200; h pinned to Et/10 regardless of (zero) loss.
    assert p.tuned_et_ms == pytest.approx(200.0)
    assert p.tuned_h_ms == pytest.approx(20.0)


def test_fix_k_et_still_tunes():
    p = DynatunePolicy(DynatuneConfig(min_list_size=3, fixed_k=10))
    feed(p, "L", 5, rtt=50.0)
    assert p.election_timeout_ms("L") == pytest.approx(50.0)


def test_channel_from_config():
    assert DynatunePolicy().heartbeat_channel == "udp"
    assert DynatunePolicy(DynatuneConfig(heartbeat_channel="tcp")).heartbeat_channel == "tcp"


# -- partition-induced sample gaps ------------------------------------------ #


def _feed_heartbeats(p, start_ms, count, *, spacing_ms=100.0, rtt_ms=50.0, seq0=0):
    """Drive the follower half with well-formed heartbeats from leader L."""
    now = start_ms
    for i in range(count):
        p.on_heartbeat(
            "L",
            HeartbeatMeta(
                seq=seq0 + i + 1,
                send_ts=now,
                rtt_sample_ms=rtt_ms,
                rtt_sample_seq=seq0 + i + 1,
            ),
            now,
        )
        now += spacing_ms
    return now


def test_gap_longer_than_twice_et_resets_window():
    p = DynatunePolicy()
    end = _feed_heartbeats(p, 0.0, 15)
    assert p.tuned_et_ms is not None
    tuned_et = p.tuned_et_ms
    # Silence far beyond any randomized draw of the tuned Et, with no
    # election timeout (frozen timers during a pause/partition heal).
    p.on_heartbeat(
        "L",
        HeartbeatMeta(seq=500, send_ts=end + 50_000.0, rtt_sample_ms=50.0, rtt_sample_seq=500),
        end + 50_000.0,
    )
    assert p.gap_resets == 1
    assert p.tuned_et_ms is None  # back to Step 0
    assert 2.0 * tuned_et < 50_000.0  # the gap really exceeded the threshold


def test_gap_reset_prevents_k_explosion_after_outage():
    """Without the reset, the post-heal ID span counts the outage as loss."""
    cfg = DynatuneConfig(reset_on_sample_gap=False)
    p_old = DynatunePolicy(cfg)
    p_new = DynatunePolicy()
    for p in (p_old, p_new):
        end = _feed_heartbeats(p, 0.0, 15)
        # outage: 400 heartbeats lost, then the stream resumes
        _feed_heartbeats(p, end + 60_000.0, 15, seq0=400)
    # Legacy behavior: the ID gap looks like ~96% loss, K explodes and h
    # collapses to the floor.  The gap reset starts a fresh window instead.
    assert p_old.measurement.loss_rate() > 0.9
    assert p_new.measurement.loss_rate() < 0.05
    assert p_new.gap_resets == 1
    assert p_new.tuned_h_ms is None or p_new.tuned_h_ms > p_old.tuned_h_ms


def test_small_gaps_do_not_reset():
    p = DynatunePolicy()
    end = _feed_heartbeats(p, 0.0, 15)
    last_hb = end - 100.0  # _feed_heartbeats returns last time + spacing
    # The next beat lands within 2*Et of the previous one: normal cadence.
    et = p.election_timeout_ms("L")
    t = last_hb + 1.5 * et
    p.on_heartbeat(
        "L",
        HeartbeatMeta(seq=16, send_ts=t, rtt_sample_ms=50.0, rtt_sample_seq=16),
        t,
    )
    assert p.gap_resets == 0
    assert p.tuned_et_ms is not None


def test_retune_surfaces_floor_clamp_metadata():
    cfg = DynatuneConfig(h_floor_ms=200.0)
    p = DynatunePolicy(cfg)
    _feed_heartbeats(p, 0.0, 15, rtt_ms=50.0)
    # tuned Et ~= 50 ms < floor 200 ms -> h capped at Et, effective K = 1
    assert p.last_tuning is not None
    assert p.last_tuning.floor_clamped
    assert p.floor_clamps >= 1
    assert p.tuned_h_ms == pytest.approx(p.tuned_et_ms)
    assert p.last_tuning.effective_k == 1


def test_leader_applies_follower_h_below_its_own_floor():
    """A follower whose Et < floor piggybacks h = Et; the leader must honor
    it — re-raising it to the floor would space heartbeats past the
    follower's whole election window (K·h <= Et, leader side)."""
    cfg = DynatuneConfig(h_floor_ms=200.0)
    leader = DynatunePolicy(cfg)
    follower_h = 50.0  # the follower's capped h (= its tuned Et)
    leader.on_heartbeat_response(
        "f",
        HeartbeatResponseMeta(echo_seq=1, echo_ts=0.0, tuned_h_ms=follower_h),
        40.0,
    )
    assert leader.heartbeat_interval_ms("f") == follower_h


def test_leader_rejects_degenerate_piggybacked_h():
    leader = DynatunePolicy()
    leader.on_heartbeat_response(
        "f", HeartbeatResponseMeta(echo_seq=1, echo_ts=0.0, tuned_h_ms=0.0), 40.0
    )
    assert leader.heartbeat_interval_ms("f") == leader.config.default_heartbeat_interval_ms
