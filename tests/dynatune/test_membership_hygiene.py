"""Dynatune under membership churn: no leaks, no floor violations.

The two hygiene promises the elastic experiments lean on:

* a committed ``remove`` drops the leader-side per-peer tuning state, so
  a long-lived policy does not accumulate one ``_FollowerPathState`` per
  node the cluster ever churned through (names are never reused);
* a fresh joiner's empty measurement window never produces a tuned pair
  violating ``K·h ≤ Et`` or an ``Et`` below the floor — the Step-0
  defaults rule until the window is genuinely ready.
"""

from repro.dynatune.policy import DynatunePolicy, StaticPolicy
from repro.scenarios.library import elastic_grow
from tests.conftest import make_dynatune_cluster


def test_on_peer_removed_drops_leader_side_path_state():
    policy = DynatunePolicy()
    policy.heartbeat_meta("n7", now_ms=0.0)  # creates the per-peer state
    assert "n7" in policy._paths
    policy.on_peer_removed("n7")
    assert "n7" not in policy._paths
    assert policy.applied_h_ms("n7") is None
    policy.on_peer_removed("n7")  # idempotent


def test_static_policy_accepts_peer_removal():
    StaticPolicy().on_peer_removed("n7")  # stateless no-op, must not raise


def test_committed_removal_cleans_every_live_policy():
    c = make_dynatune_cluster(5)
    c.enable_membership()
    leader = c.run_until_leader()
    c.run_for(5_000)  # let the leader build per-follower path state
    victim = next(n for n in c.names if n != leader)
    assert victim in c.node(leader).policy._paths
    assert c.node(leader).propose_config_change("remove", victim)
    c.run_for(4_000)
    for name in c.members():
        assert victim not in c.node(name).policy._paths


def tuned_pairs(cluster):
    """Every (node, Et, h, effective_k) currently tuned somewhere."""
    out = []
    for name in cluster.members():
        policy = cluster.node(name).policy
        et = policy.tuned_et_ms
        tuning = policy.last_tuning
        if et is not None and tuning is not None:
            out.append((name, et, tuning.h_ms, tuning.effective_k))
    return out


def test_k_times_h_never_exceeds_et_across_a_grow_event():
    c = make_dynatune_cluster(3)
    elastic_grow(["n1", "n2", "n3"], start_ms=2_000, gap_ms=5_000, joiners=2).install(c)
    floor = c.node("n1").policy.config.et_floor_ms
    # Sample the whole grow window: the joiners pass through exactly the
    # fresh-window regime the floor guards against.
    violations = []
    for _ in range(60):
        c.run_for(250)
        for name, et, h, k in tuned_pairs(c):
            if et < floor:
                violations.append(f"{name}: Et {et:.3f} below floor {floor}")
            if k * h > et + 1e-9:
                violations.append(f"{name}: K·h = {k}·{h:.3f} exceeds Et {et:.3f}")
    assert not violations, violations
    # The grow actually happened, and the joiners ended up tuned.
    assert c.members() == ["n1", "n2", "n3", "n4", "n5"]
    tuned_nodes = {name for name, *_ in tuned_pairs(c)}
    assert {"n4", "n5"} & tuned_nodes
