"""Gray-failure experiment: config gates, single-run properties, oracle.

The full 16-run grid is CI's job (``--smoke``); here individual arms run
at smoke geometry and the headline claims are asserted directly: controls
and mitigated arms stay silent, the unmitigated one-way isolation trips
the liveness oracle and inflates the term, and safety holds everywhere.
"""

import pytest

from repro.experiments.grayfail import (
    ARMS,
    GrayfailConfig,
    GrayfailResult,
    check,
    run_one,
)


def quick(**kwargs):
    kwargs.setdefault("n_nodes", 3)
    kwargs.setdefault("hold_ms", 12_000.0)
    kwargs.setdefault("settle_ms", 6_000.0)
    kwargs.setdefault("leaderless_total_bound_ms", 4_000.0)
    return GrayfailConfig(**kwargs)


def test_config_validation_and_geometry():
    with pytest.raises(ValueError):
        GrayfailConfig(arm="volcano")
    with pytest.raises(ValueError):
        GrayfailConfig(n_nodes=2)
    cfg = quick(fault_start_ms=4_000.0)
    assert cfg.horizon_ms == 4_000.0 + 12_000.0 + 6_000.0
    assert cfg.names == ("n1", "n2", "n3")
    assert set(ARMS) == {"control", "gray_egress", "one_way", "skew_drift"}


def test_control_mitigated_is_clean_and_available():
    r = run_one(quick(arm="control", mitigated=True))
    assert r.violations == ()
    assert r.liveness == ()
    assert r.commit_index >= 1
    assert r.availability > 0.9


def test_one_way_raw_trips_liveness_and_inflates_term():
    """The paper-shaped finding: an ingress-blocked node that can still
    campaign *out* livelocks a cluster without prevote/check_quorum, and
    the liveness oracle (not any safety property) is what notices."""
    raw = run_one(quick(arm="one_way", mitigated=False))
    mit = run_one(quick(arm="one_way", mitigated=True))
    assert raw.violations == () and mit.violations == ()  # safety blind
    assert raw.liveness, "oracle missed the unmitigated livelock"
    assert mit.liveness == (), "mitigated run should recover in bounds"
    assert raw.max_term - mit.max_term >= 5
    # The pairwise gates agree.
    assert check(GrayfailResult(runs=(raw, mit))) == []


def test_gray_egress_mitigated_recovers_within_outage_bound():
    r = run_one(quick(arm="gray_egress", mitigated=True))
    assert r.violations == ()
    assert r.liveness == ()
    assert r.max_leaderless_ms <= 5_000.0
    assert check(GrayfailResult(runs=(r,))) == []


def test_skew_drift_changes_timings_not_correctness():
    r = run_one(quick(arm="skew_drift", mitigated=True))
    assert r.violations == ()
    assert r.liveness == ()
    assert r.commit_index >= 1
