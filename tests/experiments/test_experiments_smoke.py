"""Tiny-scale end-to-end runs of every experiment module.

These are the "does the harness regenerate the figure's series" checks;
the benchmarks run the real (quick/paper) scales.  Each test shrinks
repetition counts and dwells aggressively but leaves mechanisms intact,
and asserts the *paper-shape* property of the figure.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments import fig4_election, fig5_throughput, fig6_rtt, fig7_loss, fig8_geo
from repro.experiments.common import SYSTEMS, get_scale, make_policy_factory


def test_policy_factory_covers_all_systems():
    for s in SYSTEMS:
        factory = make_policy_factory(s)
        assert factory("n1") is not None
    with pytest.raises(ValueError):
        make_policy_factory("paxos")


def test_scale_selection(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "paper")
    assert get_scale().name == "paper"
    monkeypatch.setenv("REPRO_SCALE", "quick")
    assert get_scale().name == "quick"
    monkeypatch.setenv("REPRO_SCALE", "warp")
    with pytest.raises(ValueError):
        get_scale()


def test_fig4_shape_dynatune_beats_raft():
    result = fig4_election.run(fig4_election.Fig4Config(n_failures=8))
    raft = result.systems["raft"]
    dyn = result.systems["dynatune"]
    assert raft.mean_detection_ms > 900.0
    assert dyn.mean_detection_ms < 400.0
    assert result.reduction("detection") > 0.6
    assert dyn.mean_ots_ms < raft.mean_ots_ms
    # CDFs well-formed
    xs, ps = dyn.ots_cdf
    assert ps[-1] == 1.0 and np.all(np.diff(xs) >= 0)
    # §IV-E ordering: Dynatune's election phase exceeds Raft's.
    assert dyn.mean_election_ms > raft.mean_election_ms


def test_fig5_shape_gap_and_knee():
    result = fig5_throughput.run(fig5_throughput.Fig5Config(repeats=2))
    raft = result.systems["raft"]
    dyn = result.systems["dynatune"]
    assert raft.peak_rps > dyn.peak_rps
    assert 0.04 < result.peak_gap < 0.09  # paper: 6.4 %
    assert raft.mean_latency_ms[-1] > raft.mean_latency_ms[0]


def test_fig6_radical_dynatune_survives_spike():
    cfg = dataclasses.replace(
        fig6_rtt.Fig6Config(pattern="radical", dwell_ms=8_000.0),
        systems=("dynatune", "raft-low"),
    )
    result = fig6_rtt.run(cfg)
    dyn = result.systems["dynatune"]
    low = result.systems["raft-low"]
    assert dyn.false_detections > 0  # the spike is noticed...
    assert dyn.unnecessary_elections == 0  # ...but pre-vote absorbs it
    assert dyn.ots_total_ms == 0.0
    assert low.unnecessary_elections > 0  # Raft-Low thrashes
    assert low.ots_total_ms > 0.0


def test_fig6_gradual_dynatune_tracks_rtt():
    cfg = dataclasses.replace(
        fig6_rtt.Fig6Config(pattern="gradual", dwell_ms=6_000.0),
        systems=("dynatune", "raft"),
        stall_profile=None,
    )
    result = fig6_rtt.run(cfg)
    dyn = result.systems["dynatune"]
    raft = result.systems["raft"]
    # During the ascending leg, Dynatune's f+1 randTO stays within a small
    # multiple of the RTT while Raft's sits near 1.5 * 1000 ms.
    mask = ~np.isnan(dyn.kth_randomized_timeout_ms) & (dyn.times_ms > 30_000)
    ratio = dyn.kth_randomized_timeout_ms[mask] / dyn.rtt_ms[mask]
    assert np.nanmedian(ratio) < 4.0
    assert np.nanmedian(raft.kth_randomized_timeout_ms) > 1000.0


def test_fig7_h_tracks_loss_and_fixk_flat():
    cfg = fig7_loss.Fig7Config(
        sizes=(5,),
        dwell_ms=8_000.0,
        loss_levels=(0.0, 0.15, 0.30),
    )
    result = fig7_loss.run(cfg)
    dyn = result.runs[("dynatune", 5)]
    fix = result.runs[("fix-k", 5)]
    # Dynatune: h falls as loss rises.
    h_low = dyn.h_at_loss(0.0)
    h_high = dyn.h_at_loss(0.30)
    assert np.mean(h_high) < 0.5 * np.max(h_low)
    # Fix-K: pinned at Et/10 ≈ 20 ms.
    assert np.nanstd(fix.h_ms) < 3.0
    # No unnecessary elections (§IV-C2).
    assert dyn.unnecessary_elections == 0
    assert fix.unnecessary_elections == 0
    # CPU ordering: Fix-K leader burns more.
    assert fix.leader_cpu.mean() > dyn.leader_cpu.mean()


def test_fig8_shape_geo():
    result = fig8_geo.run(fig8_geo.Fig8Config(n_failures=6))
    raft = result.systems["raft"]
    dyn = result.systems["dynatune"]
    assert result.reduction("detection") > 0.5
    assert dyn.mean_ots_ms < raft.mean_ots_ms
    assert set(raft.placement.values()) == {
        "tokyo",
        "london",
        "california",
        "sydney",
        "saopaulo",
    }
