"""Report plumbing: rendering and the core alias package."""

from repro.experiments.report import ReportRow, render_markdown


def test_render_markdown_table():
    rows = [
        ReportRow("Fig.4", "detection", "1205 ms", "1178 ms", "match"),
        ReportRow("Fig.5", "peak", "13678", "13749", "calibrated"),
    ]
    md = render_markdown(rows, "quick")
    assert "| Fig.4 | detection | 1205 ms | 1178 ms | match |" in md
    assert md.startswith("## Paper vs. measured (scale: quick)")
    assert md.count("\n") == 5


def test_core_alias_exports_dynatune():
    import repro.core as core
    import repro.dynatune as dynatune

    assert core.DynatunePolicy is dynatune.DynatunePolicy
    assert core.DynatuneConfig is dynatune.DynatuneConfig
    assert set(core.__all__) == set(dynatune.__all__)


def test_top_level_package_exports():
    import repro

    assert repro.__version__
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None or name == "__version__"
