"""Scenario matrix: determinism, safety gating, report rendering."""

import dataclasses

import pytest

from repro.experiments import scenario_matrix
from repro.experiments.report import render_markdown
from repro.scenarios.library import scenario_names

SMALL = scenario_matrix.ScenarioMatrixConfig(
    systems=("raft", "dynatune"),
    scenarios=("minority_partition", "leader_churn_loop"),
    settle_ms=6_000.0,
)


def test_small_matrix_runs_and_is_safe():
    result = scenario_matrix.run(SMALL)
    assert set(result.cells) == {
        (s, sc) for s in SMALL.systems for sc in SMALL.scenarios
    }
    assert result.all_safe
    for cell in result.cells.values():
        assert cell.first_leader_ms is not None
        assert cell.steps_applied > 0
        assert 0.0 <= cell.availability.unavailable_fraction <= 1.0


def test_results_identical_for_any_job_count():
    a = scenario_matrix.run(SMALL)
    b_cells = {
        (r.system, r.scenario): r
        for r in scenario_matrix.run_tasks(
            scenario_matrix._run_cell,
            [
                (s, sc, scenario_matrix.derive_trial_seed(SMALL.seed, i), SMALL)
                for i, (s, sc) in enumerate(
                    (s, sc) for s in SMALL.systems for sc in SMALL.scenarios
                )
            ],
            jobs=2,
        )
    }
    assert a.cells == b_cells


def test_leader_churn_costs_raft_more_than_partitioned_minority():
    """Sanity on the figures: killing leaders must create outages."""
    result = scenario_matrix.run(SMALL)
    churn = result.cell("raft", "leader_churn_loop")
    assert churn.availability.unavailable_ms > 0.0


def test_render_rows_shape():
    result = scenario_matrix.run(SMALL)
    rows = scenario_matrix.render_rows(result)
    assert len(rows) == len(SMALL.systems) * len(SMALL.scenarios)
    table = render_markdown(rows, "test")
    assert "minority_partition" in table
    assert all(r.verdict == "safe" for r in rows)


def test_default_config_covers_whole_library():
    cfg = scenario_matrix.ScenarioMatrixConfig.quick()
    assert cfg.scenarios == scenario_names()
    assert len(cfg.scenarios) >= 8
    assert cfg.systems == ("raft-low", "raft", "dynatune")


def test_config_validation():
    with pytest.raises(ValueError):
        scenario_matrix.ScenarioMatrixConfig(systems=())
    with pytest.raises(ValueError):
        dataclasses.replace(SMALL, settle_ms=-1.0)
