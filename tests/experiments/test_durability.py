"""Durability experiment: config derivation, gates, real runs per family."""

import dataclasses

import pytest

from repro.experiments.durability import (
    DurabilityConfig,
    DurabilityResult,
    check,
    digest,
    run_one,
)


def test_config_validation():
    with pytest.raises(ValueError):
        DurabilityConfig(family="thermite")
    with pytest.raises(ValueError):
        DurabilityConfig(n_nodes=2)
    with pytest.raises(ValueError):
        DurabilityConfig(window_ms=5_000.0, stagger_ms=4_000.0)  # overlap


def test_horizon_covers_the_last_window():
    cfg = DurabilityConfig(
        n_nodes=3, storm_start_ms=1_000.0, window_ms=2_000.0,
        stagger_ms=3_000.0, settle_ms=4_000.0,
    )
    assert cfg.horizon_ms == 1_000.0 + 2 * 3_000.0 + 2_000.0 + 4_000.0
    assert cfg.names == ("n1", "n2", "n3")
    assert cfg.corrupt_node == "n1"


def quick(family, **kwargs):
    kwargs.setdefault("n_nodes", 3)
    kwargs.setdefault("storm_start_ms", 3_000.0)
    kwargs.setdefault("window_ms", 2_500.0)
    kwargs.setdefault("stagger_ms", 3_000.0)
    kwargs.setdefault("settle_ms", 6_000.0)
    return DurabilityConfig(family=family, **kwargs)


@pytest.mark.parametrize("family", ["ideal", "lossy_fsync", "torn_tail"])
def test_family_run_passes_every_gate(family):
    r = run_one(quick(family))
    assert check(DurabilityResult(runs=(r,))) == []
    if family == "ideal":
        assert r.recoveries == 0  # ideal storage traces no disk events
        assert r.process_crashes >= 1
    else:
        assert r.recoveries >= 1
        assert r.max_replay <= r.replay_bound
    if family == "torn_tail":
        assert r.truncations >= 1


def test_corrupt_tail_refusal_stays_down_while_quorum_serves():
    r = run_one(quick("corrupt_tail"))
    assert check(DurabilityResult(runs=(r,))) == []
    assert r.corruptions >= 1
    assert r.refused == ("n1",)
    assert r.refused_stayed_down
    assert r.availability >= 0.5  # the surviving pair kept serving


def test_check_flags_a_doctored_run():
    r = run_one(quick("torn_tail"))
    bad = dataclasses.replace(
        r,
        truncations=0,
        max_replay=r.replay_bound + 1,
        machines_consistent=False,
        violations=("log diverged",),
    )
    problems = check(DurabilityResult(runs=(bad,)))
    assert any("torn tail" in p for p in problems)
    assert any("bounding the replay" in p for p in problems)
    assert any("diverged" in p for p in problems)
    assert any("safety violations" in p for p in problems)


def test_run_is_deterministic():
    cfg = quick("lossy_fsync")
    a, b = run_one(cfg), run_one(cfg)
    assert a == b
    assert digest(DurabilityResult(runs=(a,))) == digest(
        DurabilityResult(runs=(b,))
    )
