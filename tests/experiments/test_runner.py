"""Parallel experiment runner: determinism, seed derivation, job wiring."""

import numpy as np
import pytest

from repro.experiments import fig4_election as fig4
from repro.experiments.common import get_jobs
from repro.experiments.runner import derive_trial_seed, run_tasks, split_counts


# --------------------------------------------------------------------- #
# seed derivation
# --------------------------------------------------------------------- #


def test_derive_trial_seed_deterministic():
    assert derive_trial_seed(42, 3) == derive_trial_seed(42, 3)


def test_derive_trial_seed_distinct_across_trials_and_seeds():
    seeds = {derive_trial_seed(s, t) for s in range(20) for t in range(50)}
    assert len(seeds) == 20 * 50


def test_derive_trial_seed_positive_63_bit():
    for t in range(100):
        v = derive_trial_seed(1, t)
        assert 0 <= v < 2**63


def test_derive_trial_seed_not_sequential():
    # Adjacent trials must not produce adjacent seeds (stream decorrelation).
    a = derive_trial_seed(42, 0)
    b = derive_trial_seed(42, 1)
    assert abs(a - b) > 1_000_000


# --------------------------------------------------------------------- #
# work splitting
# --------------------------------------------------------------------- #


def test_split_counts_even():
    assert split_counts(12, 4) == [3, 3, 3, 3]


def test_split_counts_remainder_front_loaded():
    assert split_counts(10, 4) == [3, 3, 2, 2]


def test_split_counts_more_parts_than_total():
    assert split_counts(3, 10) == [1, 1, 1]


def test_split_counts_validation():
    with pytest.raises(ValueError):
        split_counts(0, 2)
    with pytest.raises(ValueError):
        split_counts(5, 0)


# --------------------------------------------------------------------- #
# task fan-out
# --------------------------------------------------------------------- #


def _square(x):  # module-level: picklable
    return x * x


def test_run_tasks_sequential():
    assert run_tasks(_square, [1, 2, 3], jobs=1) == [1, 4, 9]


def test_run_tasks_parallel_matches_sequential_order():
    args = list(range(20))
    assert run_tasks(_square, args, jobs=4) == run_tasks(_square, args, jobs=1)


def test_get_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert get_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert get_jobs() == 4
    monkeypatch.setenv("REPRO_JOBS", "auto")
    assert get_jobs() >= 1
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert get_jobs() >= 1
    monkeypatch.setenv("REPRO_JOBS", "-2")
    with pytest.raises(ValueError):
        get_jobs()
    monkeypatch.setenv("REPRO_JOBS", "lots")
    with pytest.raises(ValueError):
        get_jobs()


# --------------------------------------------------------------------- #
# figure experiments through the runner
# --------------------------------------------------------------------- #

_SMALL = fig4.Fig4Config(
    n_failures=3, warmup_ms=8_000.0, sleep_ms=6_000.0, settle_ms=6_000.0
)


def test_fig4_parallel_systems_bit_identical():
    seq = fig4.run(_SMALL, jobs=1)
    par = fig4.run(_SMALL, jobs=2)
    for s in _SMALL.systems:
        assert np.array_equal(seq.systems[s].detection_ms, par.systems[s].detection_ms)
        assert np.array_equal(seq.systems[s].ots_ms, par.systems[s].ots_ms)


def test_fig4_trials_independent_of_job_count():
    a = fig4.run_trials(_SMALL, n_trials=2, jobs=1)
    b = fig4.run_trials(_SMALL, n_trials=2, jobs=3)
    for s in _SMALL.systems:
        assert np.array_equal(a.systems[s].detection_ms, b.systems[s].detection_ms)


def test_fig4_trials_collect_all_shards():
    r = fig4.run_trials(_SMALL, n_trials=3, jobs=1)
    for s in _SMALL.systems:
        # one resolved episode per kill, three single-kill trials
        assert len(r.systems[s].detection_ms) == 3
        assert r.systems[s].detection_summary.mean == pytest.approx(
            float(r.systems[s].detection_ms.mean())
        )


_FIG5_SMALL = None  # built lazily: importing fig5 pulls numpy-heavy modules


def _fig5_small():
    from repro.experiments import fig5_throughput as fig5

    return fig5, fig5.Fig5Config(repeats=3, dwell_s=2.0, max_rps=4_000.0)


def test_fig5_parallel_repeats_bit_identical():
    fig5, cfg = _fig5_small()
    seq = fig5.run(cfg, jobs=1)
    par = fig5.run(cfg, jobs=3)
    for s in ("raft", "dynatune"):
        assert np.array_equal(
            seq.systems[s].throughput_rps, par.systems[s].throughput_rps
        )
        assert np.array_equal(
            seq.systems[s].mean_latency_ms, par.systems[s].mean_latency_ms
        )
        assert seq.systems[s].peak_rps == par.systems[s].peak_rps
        assert seq.systems[s].runs == par.systems[s].runs


def test_fig5_fanout_matches_sequential_reference():
    """The run_tasks routing must reproduce the former sequential loop:
    per-repeat streams are derived by name, so a hand-rolled sequential
    staircase over the same streams is the bit-exact reference."""
    from repro.cluster.workload import run_rps_staircase
    from repro.sim.rng import RngRegistry

    fig5, cfg = _fig5_small()
    result = fig5.run(cfg, jobs=2)
    rngs = RngRegistry(cfg.seed)
    for system, workload in (
        ("raft", cfg.raft_workload),
        ("dynatune", cfg.dynatune_workload()),
    ):
        for rep in range(cfg.repeats):
            reference = tuple(
                run_rps_staircase(
                    workload,
                    levels=cfg.levels(),
                    dwell_s=cfg.dwell_s,
                    rng=rngs.stream(f"fig5/{system}/{rep}"),
                )
            )
            assert result.systems[system].runs[rep] == reference


def test_fig5_run_system_respects_jobs():
    fig5, cfg = _fig5_small()
    a = fig5.run_system("raft", cfg.raft_workload, cfg, jobs=1)
    b = fig5.run_system("raft", cfg.raft_workload, cfg, jobs=2)
    assert a.runs == b.runs
    assert np.array_equal(a.throughput_rps, b.throughput_rps)
