"""Elastic experiment: config derivation, gates, one real run."""

import dataclasses

import pytest

from repro.experiments.elastic import (
    ElasticConfig,
    ElasticResult,
    check,
    digest,
    run_one,
)


def test_config_validation():
    with pytest.raises(ValueError):
        ElasticConfig(family="explode")
    with pytest.raises(ValueError):
        ElasticConfig(family="shrink", n_start=3, changes=3)
    with pytest.raises(ValueError):
        ElasticConfig(family="replace", n_start=3, changes=4)


def test_expected_shapes_per_family():
    grow = ElasticConfig(family="grow", n_start=3, changes=4)
    assert grow.spawned == ("n4", "n5", "n6", "n7")
    assert grow.expected_final_voters == ("n1", "n2", "n3", "n4", "n5", "n6", "n7")
    assert grow.expected_removed == ()
    assert grow.expected_config_commits == 8  # add + promote each

    shrink = ElasticConfig(family="shrink", n_start=7, changes=4)
    assert shrink.spawned == ()
    assert shrink.expected_final_voters == ("n1", "n2", "n3")
    assert shrink.expected_removed == ("n4", "n5", "n6", "n7")
    assert shrink.expected_config_commits == 4

    swap = ElasticConfig(family="replace", n_start=3, changes=3)
    assert swap.spawned == ("n4", "n5", "n6")
    assert swap.expected_final_voters == ("n4", "n5", "n6")
    assert swap.expected_removed == ("n1", "n2", "n3")
    assert swap.expected_config_commits == 9


def quick(family, **kwargs):
    kwargs.setdefault("changes", 1)
    kwargs.setdefault("n_start", 4 if family == "shrink" else 3)
    kwargs.setdefault("gap_ms", 4_000.0)
    kwargs.setdefault("settle_ms", 6_000.0)
    return ElasticConfig(family=family, **kwargs)


def test_grow_run_passes_every_gate():
    r = run_one(quick("grow"))
    problems = check(ElasticResult(runs=(r,)))
    assert problems == []
    assert r.config_commits == 2
    assert r.joiner_snapshot_installs == (1,)
    assert "n4" in r.final_voters
    assert r.detection_ms is not None  # the induced pause was measured


def test_check_flags_a_doctored_run():
    r = run_one(quick("grow"))
    bad = dataclasses.replace(
        r, joiner_snapshot_installs=(0,), config_commits=1, giveups=2
    )
    problems = check(ElasticResult(runs=(bad,)))
    assert any("without a snapshot" in p for p in problems)
    assert any("config entries committed" in p for p in problems)
    assert any("abandoned" in p for p in problems)


def test_run_is_deterministic():
    cfg = quick("shrink")
    a, b = run_one(cfg), run_one(cfg)
    assert a == b
    assert digest(ElasticResult(runs=(a,))) == digest(ElasticResult(runs=(b,)))
