"""Unit-level checks of the ablation helpers (full sweeps run in benches)."""

from repro.experiments import ablations


def test_ablation_point_structure():
    pts = ablations.min_list_size_sweep(sizes=(2, 10))
    assert [p.value for p in pts] == [2.0, 10.0]
    for p in pts:
        assert p.metrics["all_tuned"] == 1.0
        assert p.metrics["time_to_tuned_ms"] > 0


def test_prevote_ablation_labels():
    pts = ablations.prevote_ablation(dwell_ms=6_000.0)
    assert {p.label for p in pts} == {"prevote-on", "prevote-off"}
    on = next(p for p in pts if p.label == "prevote-on")
    assert on.metrics["ots_ms"] == 0.0


def test_window_sweep_converges():
    pts = ablations.window_sweep(windows=(30,))
    assert pts[0].metrics["adaptation_lag_ms"] < 120_000.0
