"""Soak experiment: gates, determinism, and the grid wiring."""

import dataclasses

from repro.experiments.soak import (
    SoakConfig,
    SoakResult,
    check,
    run,
    run_one,
)

#: Tiny but real: long enough that compaction triggers several times and
#: the lagger misses a few hundred committed entries.
TINY = SoakConfig(
    duration_ms=8_000.0,
    compaction_threshold=60,
    compaction_margin=8,
    churn_every_ms=5_000.0,
    lag_start_ms=2_000.0,
    catchup_timeout_ms=20_000.0,
)


def test_soak_grid_gates_hold():
    result = run(TINY, systems=("raft",))
    assert len(result.runs) == 3  # D, 2D, and the full-replay control
    problems = check(result, min_replay_ratio=2.0)
    assert problems == [], problems

    compact_short = result.find("raft", compaction=True, duration_ms=8_000.0)
    assert compact_short.compactions >= 1
    assert compact_short.snapshot_installs >= 1
    assert compact_short.caught_up
    assert compact_short.peak_retained <= compact_short.memory_bound
    assert compact_short.violations == ()

    control = result.find("raft", compaction=False, duration_ms=8_000.0)
    assert control.compactions == 0
    assert control.snapshot_installs == 0
    # Full replay pays the whole missed history; the snapshot path does not.
    assert control.replayed_entries > 4 * max(1, compact_short.replayed_entries)

    compact_long = result.find("raft", compaction=True, duration_ms=16_000.0)
    # Flat in history: double the window, same-scale catch-up replay.
    assert (
        compact_long.replayed_entries
        <= 2 * compact_short.replayed_entries + 100
    )
    # Memory stays bounded no matter the run length.
    assert compact_long.peak_retained <= compact_long.memory_bound


def test_soak_run_one_is_deterministic():
    a = run_one(TINY)
    b = run_one(TINY)
    assert a == b


def test_soak_jobs_do_not_change_results():
    base = dataclasses.replace(TINY, duration_ms=6_000.0)
    seq = run(base, systems=("raft",), jobs=1)
    par = run(base, systems=("raft",), jobs=3)
    assert seq == par


def test_check_flags_violated_gates():
    result = run(TINY, systems=("raft",))
    ok_run = result.find("raft", compaction=True, duration_ms=8_000.0)

    bloated = dataclasses.replace(ok_run, peak_retained=ok_run.memory_bound + 1)
    problems = check(
        SoakResult(runs=tuple(bloated if r is ok_run else r for r in result.runs)),
        min_replay_ratio=2.0,
    )
    assert any("exceeds the bound" in p for p in problems)

    no_compact = dataclasses.replace(ok_run, compactions=0)
    problems = check(
        SoakResult(runs=tuple(no_compact if r is ok_run else r for r in result.runs)),
        min_replay_ratio=2.0,
    )
    assert any("never triggered" in p for p in problems)

    no_snap = dataclasses.replace(ok_run, snapshot_installs=0)
    problems = check(
        SoakResult(runs=tuple(no_snap if r is ok_run else r for r in result.runs)),
        min_replay_ratio=2.0,
    )
    assert any("without a snapshot" in p for p in problems)

    stuck = dataclasses.replace(ok_run, caught_up=False)
    problems = check(
        SoakResult(runs=tuple(stuck if r is ok_run else r for r in result.runs)),
        min_replay_ratio=2.0,
    )
    assert any("failed to catch up" in p for p in problems)


def test_check_reports_missing_compaction_runs_instead_of_crashing():
    result = run(TINY, systems=("raft",))
    control_only = SoakResult(
        runs=tuple(r for r in result.runs if not r.compaction)
    )
    problems = check(control_only, min_replay_ratio=2.0)
    assert any("no compaction-enabled runs" in p for p in problems)
