"""Scaling sweep: shape, physics, and the determinism contract."""

import dataclasses

import pytest

from repro.experiments.fig_scale import ScaleSweepConfig, run
from repro.experiments.scenario_matrix import ScenarioMatrixConfig


def tiny_config(**overrides) -> ScaleSweepConfig:
    base = dict(
        systems=("raft", "dynatune"),
        sizes=(3, 9),
        n_failures=1,
        warmup_ms=4_000.0,
        sleep_ms=4_000.0,
        settle_ms=3_000.0,
        seed=7,
    )
    base.update(overrides)
    return ScaleSweepConfig(**base)


def test_config_validation():
    with pytest.raises(ValueError):
        ScaleSweepConfig(sizes=())
    with pytest.raises(ValueError):
        ScaleSweepConfig(n_failures=0)
    with pytest.raises(ValueError):
        ScaleSweepConfig(sizes=(2,))


def test_sweep_shape_and_resolution():
    result = run(tiny_config())
    assert set(result.cells) == {
        (s, n) for s in ("raft", "dynatune") for n in (3, 9)
    }
    for cell in result.cells.values():
        # Every induced failure must have been detected and re-elected.
        assert cell.resolved == cell.n_failures
        assert cell.detection_ms > 0.0
        assert cell.ots_ms >= cell.detection_ms
        assert cell.simulated_ms > 0.0
        assert cell.commit_advances >= 1  # the no-op entry commits


def test_dynatune_detects_faster_at_every_size():
    result = run(tiny_config())
    for n in (3, 9):
        assert (
            result.cell("dynatune", n).detection_ms
            < result.cell("raft", n).detection_ms / 3.0
        )


def test_heartbeat_load_grows_with_cluster_size():
    result = run(tiny_config())
    for system in ("raft", "dynatune"):
        small = result.cell(system, 3).heartbeats_per_sim_s
        large = result.cell(system, 9).heartbeats_per_sim_s
        assert large > 2.0 * small  # leader fan-out is linear in N


def test_simulated_quantities_identical_across_job_counts():
    cfg = tiny_config()
    a = run(cfg, jobs=1)
    b = run(cfg, jobs=4)
    wall_free = [
        "system",
        "n_nodes",
        "n_failures",
        "detection_ms",
        "ots_ms",
        "resolved",
        "simulated_ms",
        "heartbeats_per_sim_s",
        "messages_per_sim_s",
        "commit_advances",
    ]
    for key in a.cells:
        ca, cb = a.cells[key], b.cells[key]
        for field in wall_free:
            assert getattr(ca, field) == getattr(cb, field), (key, field)


def test_quick_config_follows_scale_preset():
    cfg = ScaleSweepConfig.quick()
    assert 5 in cfg.sizes
    assert cfg.n_failures >= 1
    assert ScaleSweepConfig.paper_scale().sizes[-1] == 101


def test_large_cluster_smoke_preset_is_partition_heavy_subset():
    cfg = ScenarioMatrixConfig.large_cluster_smoke(25)
    assert cfg.n_nodes == 25
    assert set(cfg.scenarios) == {
        "symmetric_split",
        "minority_partition",
        "majority_partition",
        "leader_churn_loop",
    }
    # Still the declarative-config type the matrix runner expects.
    assert dataclasses.replace(cfg, seed=99).seed == 99
