"""Process lifecycle: pause/resume/crash/recover gates."""

import pytest

from repro.sim.loop import EventLoop, SimulationError
from repro.sim.process import Process, ProcessState


class Echo(Process):
    def __init__(self, loop):
        super().__init__(loop, "echo")
        self.received = []
        self.recovered = 0

    def on_message(self, sender, payload):
        self.received.append((sender, payload))

    def on_recover(self):
        self.recovered += 1


@pytest.fixture
def loop():
    return EventLoop()


def test_running_process_receives(loop):
    p = Echo(loop)
    p.deliver("a", 1)
    assert p.received == [("a", 1)]


def test_paused_process_drops_messages(loop):
    p = Echo(loop)
    p.pause()
    p.deliver("a", 1)
    assert p.received == []
    p.resume()
    p.deliver("a", 2)
    assert p.received == [("a", 2)]


def test_pause_freezes_timers(loop):
    p = Echo(loop)
    fired = []
    p.timers.timer("t", lambda: fired.append(loop.now)).start(10.0)
    loop.run_until(3.0)
    p.pause()
    loop.run_until(100.0)
    assert fired == []
    p.resume()
    loop.run()
    assert fired == [107.0]


def test_double_pause_rejected(loop):
    p = Echo(loop)
    p.pause()
    with pytest.raises(SimulationError):
        p.pause()


def test_resume_requires_paused(loop):
    p = Echo(loop)
    with pytest.raises(SimulationError):
        p.resume()


def test_crash_disarms_timers_and_drops_messages(loop):
    p = Echo(loop)
    fired = []
    p.timers.timer("t", lambda: fired.append(1)).start(5.0)
    p.crash()
    p.deliver("a", 1)
    loop.run()
    assert fired == []
    assert p.received == []
    assert p.state is ProcessState.CRASHED


def test_crash_is_idempotent(loop):
    p = Echo(loop)
    p.crash()
    p.crash()
    assert p.state is ProcessState.CRASHED


def test_recover_calls_hook(loop):
    p = Echo(loop)
    p.crash()
    p.recover()
    assert p.recovered == 1
    assert p.alive


def test_recover_requires_crashed(loop):
    p = Echo(loop)
    with pytest.raises(SimulationError):
        p.recover()


def test_lifecycle_events_traced(loop):
    p = Echo(loop)
    p.pause()
    p.resume()
    p.crash()
    p.recover()
    kinds = [r.kind for r in p.trace.all()]
    assert kinds == [
        "process_paused",
        "process_resumed",
        "process_crashed",
        "process_recovered",
    ]
