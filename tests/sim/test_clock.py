"""VirtualClock: monotonicity and validation."""

import pytest

from repro.sim.clock import MINUTE, MS, SECOND, VirtualClock


def test_starts_at_zero_by_default():
    assert VirtualClock().now == 0.0


def test_starts_at_given_time():
    assert VirtualClock(500.0).now == 500.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        VirtualClock(-1.0)


def test_advance_moves_time():
    c = VirtualClock()
    c.advance_to(10.5)
    assert c.now == 10.5


def test_advance_to_same_time_allowed():
    c = VirtualClock(7.0)
    c.advance_to(7.0)
    assert c.now == 7.0


def test_time_cannot_run_backwards():
    c = VirtualClock(100.0)
    with pytest.raises(ValueError, match="backwards"):
        c.advance_to(99.999)


def test_unit_constants():
    assert MS == 1.0
    assert SECOND == 1000.0
    assert MINUTE == 60_000.0
