"""VirtualClock monotonicity/validation; NodeClock skew arithmetic."""

import pytest

from repro.sim.clock import MINUTE, MS, SECOND, NodeClock, VirtualClock
from repro.sim.loop import EventLoop


def test_starts_at_zero_by_default():
    assert VirtualClock().now == 0.0


def test_starts_at_given_time():
    assert VirtualClock(500.0).now == 500.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        VirtualClock(-1.0)


def test_advance_moves_time():
    c = VirtualClock()
    c.advance_to(10.5)
    assert c.now == 10.5


def test_advance_to_same_time_allowed():
    c = VirtualClock(7.0)
    c.advance_to(7.0)
    assert c.now == 7.0


def test_time_cannot_run_backwards():
    c = VirtualClock(100.0)
    with pytest.raises(ValueError, match="backwards"):
        c.advance_to(99.999)


def test_unit_constants():
    assert MS == 1.0
    assert SECOND == 1000.0
    assert MINUTE == 60_000.0


def _loop_at(t: float) -> EventLoop:
    loop = EventLoop()
    loop.run_until(t)
    return loop


def test_node_clock_identity_is_bit_exact():
    loop = _loop_at(1234.5678)
    clock = NodeClock(loop)
    assert not clock.skewed
    assert clock.now() is loop.now or clock.now() == loop.now
    assert clock.now() == 1234.5678
    assert clock.scale_duration(300.0) == 300.0
    assert clock.sim_now() == loop.now


def test_node_clock_offset_and_drift():
    loop = _loop_at(1000.0)
    clock = NodeClock(loop, offset_ms=50.0, drift=0.01)
    assert clock.skewed
    # local = sim + offset + drift * sim
    assert clock.now() == pytest.approx(1000.0 + 50.0 + 10.0)
    assert clock.sim_now() == 1000.0
    # A fast clock experiences its timer early: sim-frame duration shrinks.
    assert clock.scale_duration(101.0) == pytest.approx(100.0)


def test_node_clock_slow_clock_stretches_durations():
    clock = NodeClock(_loop_at(0.0), drift=-0.5)
    assert clock.scale_duration(100.0) == pytest.approx(200.0)


def test_node_clock_set_reskews_and_restores_identity():
    loop = _loop_at(500.0)
    clock = NodeClock(loop)
    clock.set(offset_ms=-20.0, drift=0.02)
    assert clock.now() == pytest.approx(500.0 - 20.0 + 10.0)
    clock.set()
    assert not clock.skewed
    assert clock.now() == loop.now


def test_node_clock_validation():
    loop = _loop_at(0.0)
    with pytest.raises(ValueError):
        NodeClock(loop, drift=-1.0)
    with pytest.raises(ValueError):
        NodeClock(loop, drift=float("nan"))
    with pytest.raises(ValueError):
        NodeClock(loop, offset_ms=float("nan"))
    clock = NodeClock(loop)
    with pytest.raises(ValueError):
        clock.set(drift=-2.0)
