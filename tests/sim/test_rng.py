"""Deterministic named RNG streams."""

import numpy as np

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_deterministic():
    assert derive_seed(1, "a") == derive_seed(1, "a")


def test_derive_seed_varies_with_name_and_seed():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_same_name_returns_same_generator():
    r = RngRegistry(7)
    assert r.stream("x") is r.stream("x")


def test_streams_are_independent_of_creation_order():
    r1 = RngRegistry(7)
    a_first = r1.stream("a").random()
    r2 = RngRegistry(7)
    r2.stream("zzz")  # create another stream first
    a_second = r2.stream("a").random()
    assert a_first == a_second


def test_identical_across_registries_with_same_seed():
    draws1 = RngRegistry(42).stream("link").random(10)
    draws2 = RngRegistry(42).stream("link").random(10)
    assert np.array_equal(draws1, draws2)


def test_different_seeds_differ():
    d1 = RngRegistry(1).stream("link").random(4)
    d2 = RngRegistry(2).stream("link").random(4)
    assert not np.array_equal(d1, d2)


def test_fresh_replays_stream_from_origin():
    r = RngRegistry(9)
    first = r.stream("s").random(5)
    replay = r.fresh("s").random(5)
    assert np.array_equal(first, replay)


def test_names_lists_created_streams():
    r = RngRegistry(1)
    r.stream("b")
    r.stream("a")
    assert r.names() == ["a", "b"]
