"""Timer and TimerService: reset semantics and freeze/thaw."""

import pytest

from repro.sim.loop import EventLoop, SimulationError
from repro.sim.timers import Timer, TimerService


@pytest.fixture
def loop():
    return EventLoop()


def test_timer_fires_once(loop):
    fired = []
    t = Timer(loop, "t", lambda: fired.append(loop.now))
    t.start(10.0)
    loop.run()
    assert fired == [10.0]
    assert not t.running


def test_timer_reset_pushes_deadline(loop):
    fired = []
    t = Timer(loop, "t", lambda: fired.append(loop.now))
    t.start(10.0)
    loop.schedule(5.0, lambda: t.reset(10.0))
    loop.run()
    assert fired == [15.0]


def test_repeated_resets_like_heartbeats(loop):
    # Reset every 5 ms for 10 rounds; timer of 8 ms must never fire until
    # resets stop.
    fired = []
    t = Timer(loop, "election", lambda: fired.append(loop.now))
    t.start(8.0)
    for i in range(1, 11):
        loop.schedule(5.0 * i, lambda: t.reset(8.0))
    loop.run()
    assert fired == [58.0]  # last reset at 50 + 8


def test_start_while_running_rejected(loop):
    t = Timer(loop, "t", lambda: None)
    t.start(10.0)
    with pytest.raises(SimulationError):
        t.start(10.0)


def test_cancel_stops_expiry(loop):
    fired = []
    t = Timer(loop, "t", lambda: fired.append(1))
    t.start(10.0)
    assert t.cancel() is True
    loop.run()
    assert fired == []
    assert t.cancel() is False


def test_negative_duration_rejected(loop):
    t = Timer(loop, "t", lambda: None)
    with pytest.raises(SimulationError):
        t.start(-1.0)


def test_remaining_and_deadline(loop):
    t = Timer(loop, "t", lambda: None)
    t.start(10.0)
    assert t.deadline == 10.0
    assert t.remaining == 10.0
    loop.schedule(4.0, lambda: None)
    loop.run_until(4.0)
    assert t.remaining == pytest.approx(6.0)
    t.cancel()
    assert t.deadline is None and t.remaining is None


def test_zero_duration_fires_immediately_on_run(loop):
    fired = []
    t = Timer(loop, "t", lambda: fired.append(loop.now))
    t.start(0.0)
    loop.run()
    assert fired == [0.0]


# --------------------------------------------------------------------- #
# TimerService
# --------------------------------------------------------------------- #


def test_service_returns_same_timer_for_name(loop):
    svc = TimerService(loop, "n1")
    a = svc.timer("election", lambda: None)
    b = svc.timer("election", lambda: None)
    assert a is b


def test_service_drop_cancels(loop):
    svc = TimerService(loop, "n1")
    fired = []
    svc.timer("hb", lambda: fired.append(1)).start(5.0)
    svc.drop("hb")
    loop.run()
    assert fired == []
    assert svc.get("hb") is None


def test_freeze_thaw_preserves_remaining(loop):
    svc = TimerService(loop, "n1")
    fired = []
    svc.timer("t", lambda: fired.append(loop.now)).start(10.0)
    loop.run_until(4.0)
    svc.freeze()
    loop.run_until(50.0)  # frozen: nothing fires
    assert fired == []
    svc.thaw()
    loop.run()
    assert fired == [56.0]  # 50 + remaining 6


def test_freeze_twice_rejected(loop):
    svc = TimerService(loop, "n1")
    svc.freeze()
    with pytest.raises(SimulationError):
        svc.freeze()


def test_thaw_without_freeze_rejected(loop):
    svc = TimerService(loop, "n1")
    with pytest.raises(SimulationError):
        svc.thaw()


def test_freeze_skips_idle_timers(loop):
    svc = TimerService(loop, "n1")
    svc.timer("idle", lambda: None)  # never started
    svc.timer("live", lambda: None).start(10.0)
    svc.freeze()
    svc.thaw()
    assert svc.get("idle") is not None
    assert not svc.get("idle").running
    assert svc.get("live").running


def test_cancel_all_clears_frozen_state(loop):
    svc = TimerService(loop, "n1")
    svc.timer("t", lambda: None).start(5.0)
    svc.freeze()
    svc.cancel_all()
    # After cancel_all the service is usable again (crash semantics).
    svc.freeze()
    svc.thaw()


def test_names_sorted(loop):
    svc = TimerService(loop, "n1")
    svc.timer("b", lambda: None)
    svc.timer("a", lambda: None)
    assert svc.names() == ["a", "b"]
