"""EventLoop: ordering, cancellation, run_until semantics."""

import pytest

from repro.sim.events import PRIORITY_MESSAGE, PRIORITY_TIMER
from repro.sim.loop import EventLoop, SimulationError


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(30.0, lambda: fired.append("c"))
    loop.schedule(10.0, lambda: fired.append("a"))
    loop.schedule(20.0, lambda: fired.append("b"))
    loop.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule(12.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [12.5]
    assert loop.now == 12.5


def test_fifo_order_for_simultaneous_events():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.schedule(5.0, lambda i=i: fired.append(i))
    loop.run()
    assert fired == list(range(10))


def test_priority_breaks_ties_before_seq():
    # A message and a timer at the same instant: message first — this is
    # the reset-before-expire rule Raft heartbeats rely on.
    loop = EventLoop()
    fired = []
    loop.schedule(5.0, lambda: fired.append("timer"), priority=PRIORITY_TIMER)
    loop.schedule(5.0, lambda: fired.append("msg"), priority=PRIORITY_MESSAGE)
    loop.run()
    assert fired == ["msg", "timer"]


def test_zero_delay_runs_after_current_event():
    loop = EventLoop()
    fired = []

    def outer():
        loop.schedule(0.0, lambda: fired.append("inner"))
        fired.append("outer")

    loop.schedule(1.0, outer)
    loop.run()
    assert fired == ["outer", "inner"]
    assert loop.now == 1.0


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.schedule(-0.001, lambda: None)


def test_nan_delay_rejected():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.schedule(float("nan"), lambda: None)


def test_schedule_at_in_past_rejected():
    loop = EventLoop()
    loop.schedule(10.0, lambda: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.schedule_at(5.0, lambda: None)


def test_cancel_prevents_execution():
    loop = EventLoop()
    fired = []
    handle = loop.schedule(5.0, lambda: fired.append(1))
    assert handle.cancel() is True
    loop.run()
    assert fired == []


def test_cancel_is_idempotent():
    loop = EventLoop()
    handle = loop.schedule(5.0, lambda: None)
    assert handle.cancel() is True
    assert handle.cancel() is False


def test_step_returns_false_when_empty():
    assert EventLoop().step() is False


def test_step_executes_exactly_one_event():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(2.0, lambda: fired.append(2))
    assert loop.step() is True
    assert fired == [1]


def test_run_until_executes_boundary_inclusive():
    loop = EventLoop()
    fired = []
    loop.schedule(10.0, lambda: fired.append("on"))
    loop.schedule(10.0001, lambda: fired.append("after"))
    loop.run_until(10.0)
    assert fired == ["on"]
    assert loop.now == 10.0


def test_run_until_advances_clock_without_events():
    loop = EventLoop()
    loop.run_until(42.0)
    assert loop.now == 42.0


def test_run_until_int_target_keeps_clock_float():
    loop = EventLoop()
    loop.run_until(5000)
    assert isinstance(loop.now, float)
    assert repr(loop.now) == "5000.0"


def test_run_until_past_rejected():
    loop = EventLoop()
    loop.run_until(10.0)
    with pytest.raises(SimulationError):
        loop.run_until(5.0)


def test_run_max_events_guard():
    loop = EventLoop()

    def reschedule():
        loop.schedule(1.0, reschedule)

    loop.schedule(1.0, reschedule)
    with pytest.raises(SimulationError, match="max_events"):
        loop.run(max_events=100)


def test_run_exactly_max_events_is_fine():
    loop = EventLoop()
    for _ in range(5):
        loop.schedule(1.0, lambda: None)
    assert loop.run(max_events=5) == 5


def test_run_one_over_max_events_raises():
    loop = EventLoop()
    for _ in range(6):
        loop.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError, match="max_events"):
        loop.run(max_events=5)


def test_run_until_exactly_max_events_is_fine():
    # run() and run_until() share the boundary: exactly max_events within
    # the bound is not an error.
    loop = EventLoop()
    for i in range(5):
        loop.schedule(float(i), lambda: None)
    loop.schedule(100.0, lambda: None)  # beyond the bound: doesn't count
    assert loop.run_until(10.0, max_events=5) == 5


def test_run_until_one_over_max_events_raises():
    loop = EventLoop()
    for i in range(6):
        loop.schedule(float(i), lambda: None)
    with pytest.raises(SimulationError, match="max_events"):
        loop.run_until(10.0, max_events=5)


def test_clock_view_is_live():
    # loop.clock may be held across events; its now must track the loop.
    loop = EventLoop()
    clock = loop.clock
    loop.run_until(42.0)
    assert clock.now == 42.0
    assert loop.clock is clock  # stable identity, no per-access allocation


def test_next_event_time_unavailable_mid_run():
    loop = EventLoop()
    errors = []

    def probe():
        try:
            loop.next_event_time()
        except SimulationError as e:
            errors.append(e)

    loop.schedule(1.0, probe)
    loop.run()
    assert len(errors) == 1


def test_executed_counter():
    loop = EventLoop()
    for _ in range(5):
        loop.schedule(1.0, lambda: None)
    loop.run()
    assert loop.executed == 5


def test_next_event_time_skips_cancelled():
    loop = EventLoop()
    h = loop.schedule(1.0, lambda: None)
    loop.schedule(2.0, lambda: None)
    h.cancel()
    assert loop.next_event_time() == 2.0


def test_next_event_time_empty():
    assert EventLoop().next_event_time() is None


def test_events_scheduled_during_run_until_within_bound_execute():
    loop = EventLoop()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            loop.schedule(1.0, lambda: chain(n + 1))

    loop.schedule(1.0, lambda: chain(1))
    loop.run_until(3.5)
    assert fired == [1, 2, 3]
    loop.run_until(10.0)
    assert fired == [1, 2, 3, 4, 5]
