"""Kernel invariants: golden-seed determinism, lazy timers, compaction.

The golden digests below were captured from the *pre-rework* kernel (the
seed implementation with per-``Event`` ``__lt__`` heap ordering, eager
timer resets and closure-based deliveries).  The current kernel — tuple
-ordered list events, sorted-batch drain, lazy timer rearm, slotted
delivery callables — must reproduce the exact same traces bit for bit:
same seeds ⇒ same event total order ⇒ same measurements.
"""

import hashlib

import pytest

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.harness import ClusterHarness
from repro.experiments.common import make_policy_factory
from repro.sim.loop import EventLoop, SimulationError
from repro.sim.timers import Timer, TimerService

# sha256 of the full trace of a 5-node, seed-42, 5-leader-kill run,
# captured on the seed kernel (see module docstring).
GOLDEN_TRACE_DIGESTS = {
    "raft": "7b845a085f128dc52b7a564b8f0076f808bc4b385b78ba1d3e46d0d119879a6e",
    "dynatune": "4e83b9d18c5bc839edb2f578611ec7e2b21510ffd477fcf3d38cf02c4770b44a",
}


def election_trace_digest(system: str) -> str:
    cluster = build_cluster(
        ClusterConfig(n_nodes=5, seed=42, rtt_ms=100.0, loss=0.0),
        make_policy_factory(system),
    )
    cluster.start()
    harness = ClusterHarness(cluster)
    harness.run_leader_failure_loop(
        5, warmup_ms=8_000.0, sleep_ms=6_000.0, settle_ms=8_000.0
    )
    m = hashlib.sha256()
    for r in cluster.trace.all():
        m.update(f"{r.time!r}|{r.node}|{r.kind}|{sorted(r.fields.items())!r}\n".encode())
    return m.hexdigest()


@pytest.mark.parametrize("system", sorted(GOLDEN_TRACE_DIGESTS))
def test_golden_seed_election_trace(system):
    """Kernel rework preserves the bit-exact event total order."""
    assert election_trace_digest(system) == GOLDEN_TRACE_DIGESTS[system]


def test_same_seed_same_digest_twice():
    """The digest itself is stable run-to-run (no hidden global state)."""
    assert election_trace_digest("raft") == election_trace_digest("raft")


# --------------------------------------------------------------------- #
# lazy timer semantics
# --------------------------------------------------------------------- #


def test_lazy_reset_does_not_touch_heap():
    """Extending resets are attribute writes: the heap must not grow."""
    loop = EventLoop()
    t = Timer(loop, "el", lambda: None)
    t.start(1e9)
    before = loop.pending
    for _ in range(10_000):
        t.reset(1e9)
    assert loop.pending == before  # still the single scheduled event


def test_lazy_reset_fires_at_logical_deadline():
    loop = EventLoop()
    fired = []
    t = Timer(loop, "el", lambda: fired.append(loop.now))
    t.start(10.0)
    for i in range(1, 6):
        loop.schedule(2.0 * i, lambda: t.reset(10.0))
    loop.run()
    assert fired == [20.0]  # last reset at 10 + duration 10


def test_stale_event_rearms_not_fires():
    """The stale scheduled event must re-arm silently, not invoke the cb."""
    loop = EventLoop()
    fired = []
    t = Timer(loop, "el", lambda: fired.append(loop.now))
    t.start(10.0)
    loop.schedule(5.0, lambda: t.reset(10.0))  # deadline becomes 15
    loop.run_until(10.0)  # the stale event at t=10 fires internally
    assert fired == []
    assert t.running
    assert t.deadline == 15.0
    loop.run_until(20.0)
    assert fired == [15.0]
    assert not t.running


def test_shrinking_reset_rearms_eagerly():
    """A reset to an *earlier* deadline cannot ride the stale event."""
    loop = EventLoop()
    fired = []
    t = Timer(loop, "el", lambda: fired.append(loop.now))
    t.start(100.0)
    t.reset(5.0)
    loop.run()
    assert fired == [5.0]


def test_deadline_and_remaining_track_logical_state():
    loop = EventLoop()
    t = Timer(loop, "el", lambda: None)
    t.start(10.0)
    t.reset(30.0)  # lazy: scheduled event still at 10, deadline at 30
    assert t.deadline == 30.0
    assert t.remaining == 30.0
    loop.run_until(12.0)  # stale event consumed, re-armed at 30
    assert t.deadline == 30.0
    assert t.remaining == pytest.approx(18.0)


def test_freeze_thaw_with_lazy_deadline():
    """TimerService freeze/thaw must capture the *logical* remaining time."""
    loop = EventLoop()
    fired = []
    svc = TimerService(loop, "n1")
    t = svc.timer("el", lambda: fired.append(loop.now))
    t.start(10.0)
    loop.run_until(4.0)
    t.reset(10.0)  # deadline 14, stale event still armed for 10
    svc.freeze()
    loop.run_until(50.0)
    assert fired == []
    svc.thaw()  # remaining was 10
    loop.run_until(100.0)
    assert fired == [60.0]


def test_cancel_discards_lazy_deadline():
    loop = EventLoop()
    fired = []
    t = Timer(loop, "el", lambda: fired.append(loop.now))
    t.start(10.0)
    t.reset(30.0)
    assert t.cancel() is True
    loop.run()
    assert fired == []
    assert t.cancel() is False


# --------------------------------------------------------------------- #
# heap compaction
# --------------------------------------------------------------------- #


def test_compaction_bounds_cancel_storm():
    """100k schedule+cancel cycles must not grow the pending set."""
    loop = EventLoop()
    for i in range(100_000):
        loop.schedule(1_000.0 + i, lambda: None).cancel()
    # Compaction keeps the dead fraction bounded; without it the heap
    # would hold all 100k corpses.
    assert loop.pending < 1_000
    loop.run()
    assert loop.executed == 0


def test_compaction_bounds_mixed_storm():
    """Live events survive compaction; dead ones are reclaimed."""
    loop = EventLoop()
    live = []
    fired = []
    for i in range(50_000):
        h = loop.schedule(10.0 + i * 0.001, lambda: fired.append(None))
        if i % 100 == 0:
            live.append(h)
        else:
            h.cancel()
    assert loop.pending < 5_000
    loop.run()
    assert len(fired) == len(live) == 500


def test_timer_reset_storm_keeps_heap_tiny():
    """The benchmark scenario: per-heartbeat resets leave no heap trail."""
    loop = EventLoop()
    t = Timer(loop, "el", lambda: None)
    t.start(1e12)
    for _ in range(100_000):
        t.reset(1e12)
    assert loop.pending <= 2


# --------------------------------------------------------------------- #
# loop execution contracts
# --------------------------------------------------------------------- #


def test_run_is_not_reentrant():
    loop = EventLoop()
    errors = []

    def evil():
        try:
            loop.run()
        except SimulationError as e:
            errors.append(e)

    loop.schedule(1.0, evil)
    loop.run()
    assert len(errors) == 1


def test_step_is_not_reentrant():
    loop = EventLoop()
    errors = []

    def evil():
        try:
            loop.step()
        except SimulationError as e:
            errors.append(e)

    loop.schedule(1.0, evil)
    loop.run()
    assert len(errors) == 1


def test_events_scheduled_mid_run_interleave_correctly():
    """In-run schedules (live heap) merge into the sorted batch order."""
    loop = EventLoop()
    fired = []
    loop.schedule(10.0, lambda: fired.append("a"))
    loop.schedule(30.0, lambda: fired.append("c"))

    def inject():
        loop.schedule(5.0, lambda: fired.append("b"))  # lands at t=25

    loop.schedule(20.0, inject)
    loop.run()
    assert fired == ["a", "b", "c"]


def test_zero_delay_chain_mid_run():
    loop = EventLoop()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            loop.schedule(0.0, lambda: chain(n + 1))

    loop.schedule(1.0, lambda: chain(1))
    loop.schedule(1.0, lambda: fired.append("tail"))
    loop.run()
    # Zero-delay events queue after already-pending same-instant events.
    assert fired == [1, "tail", 2, 3]
