"""TraceLog storage gates: retention off/filtered, listeners always exact.

The gate exists so high-rate runs can skip record construction entirely,
but the correctness-critical consumer — an event-hooked SafetyChecker —
subscribes a listener and must keep seeing *every* record no matter how
the storage gate is set.
"""

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.harness import ClusterHarness
from repro.experiments.common import make_policy_factory
from repro.scenarios.safety import HOOK_KINDS, SafetyChecker
from repro.sim.tracing import TraceLog


def test_default_is_fully_on():
    log = TraceLog()
    assert log.enabled
    assert log.kept_kinds is None
    rec = log.record(1.0, "n1", "election_start", term=3)
    assert rec is not None
    assert len(log) == 1
    assert log.of_kind("election_start")[0].get("term") == 3


def test_disabled_log_stores_nothing_and_returns_none():
    log = TraceLog()
    log.set_enabled(False)
    assert log.record(1.0, "n1", "election_start", term=3) is None
    assert len(log) == 0
    log.set_enabled(True)
    assert log.record(2.0, "n1", "election_start", term=4) is not None
    assert len(log) == 1  # earlier records stay dropped, later ones stored


def test_kind_filter_stores_only_allowed_kinds():
    log = TraceLog()
    log.keep_kinds({"become_leader"})
    assert log.record(1.0, "n1", "election_start", term=1) is None
    assert log.record(2.0, "n1", "become_leader", term=1) is not None
    assert len(log) == 1
    assert log.of_kind("election_start") == []
    log.keep_kinds(None)
    log.record(3.0, "n1", "election_start", term=2)
    assert len(log) == 2


def test_wants_reflects_gate_and_listeners():
    log = TraceLog()
    assert log.wants("anything")
    log.keep_kinds({"a"}, validate=False)
    assert log.wants("a")
    assert not log.wants("b")
    log.set_enabled(False)
    assert not log.wants("a")
    seen = []
    log.subscribe(seen.append)
    assert log.wants("a") and log.wants("b")  # listeners see everything


def test_listeners_see_all_records_even_when_fully_gated():
    log = TraceLog()
    log.set_enabled(False)
    log.keep_kinds({"nothing"}, validate=False)
    seen = []
    log.subscribe(seen.append)
    log.record(1.0, "n1", "election_start", term=1)
    log.record(2.0, "n2", "process_paused")
    assert [r.kind for r in seen] == ["election_start", "process_paused"]
    assert seen[0].get("term") == 1
    assert len(log) == 0  # observed, not stored


def test_safety_checker_event_hooks_see_every_record_under_gate():
    """Run a leader-kill scenario with storage disabled for hook kinds:
    the subscribed checker must still observe every term/role/fault
    transition (same count as with the gate fully open)."""

    def run(gate: bool) -> tuple[int, int]:
        cluster = build_cluster(
            ClusterConfig(n_nodes=3, seed=11, rtt_ms=50.0),
            make_policy_factory("raft-low"),
        )
        hook_hits = []
        orig = SafetyChecker.check_now

        class CountingChecker(SafetyChecker):
            def check_now(self):  # noqa: D102
                hook_hits.append(cluster.loop.now)
                orig(self)

        checker = CountingChecker(cluster)
        checker.install(event_hooks=True)
        if gate:
            # Keep only a kind the scenario never emits: storage is
            # effectively off for every hook kind.
            cluster.trace.keep_kinds({"never_emitted"}, validate=False)
        cluster.start()
        ClusterHarness(cluster).run_leader_failure_loop(
            2, warmup_ms=2_000.0, sleep_ms=1_500.0, settle_ms=2_000.0
        )
        return len(hook_hits), len(cluster.trace.all())

    open_hits, open_stored = run(gate=False)
    gated_hits, gated_stored = run(gate=True)
    assert open_hits > 0
    assert gated_hits == open_hits  # hooks unaffected by the storage gate
    assert gated_stored == 0 and open_stored > 0


def test_hook_kinds_cover_role_and_fault_records():
    # The checker relies on these exact kinds existing in HOOK_KINDS;
    # losing one silently shrinks event-hook coverage.
    assert {
        "become_leader",
        "step_down",
        "election_timeout",
        "process_paused",
        "process_crashed",
    } <= HOOK_KINDS
