"""TraceLog queries."""

from repro.sim.tracing import TraceLog


def make_log():
    t = TraceLog()
    t.record(1.0, "n1", "a", x=1)
    t.record(2.0, "n2", "b")
    t.record(3.0, "n1", "a", x=2)
    t.record(4.0, "n3", "c")
    return t


def test_len_and_all_order():
    t = make_log()
    assert len(t) == 4
    assert [r.time for r in t.all()] == [1.0, 2.0, 3.0, 4.0]


def test_of_kind():
    t = make_log()
    assert [r.get("x") for r in t.of_kind("a")] == [1, 2]
    assert t.of_kind("missing") == []


def test_of_kinds_merged_in_time_order():
    t = make_log()
    got = t.of_kinds("a", "c")
    assert [r.time for r in got] == [1.0, 3.0, 4.0]


def test_where_with_kind_prefilter():
    t = make_log()
    got = t.where(lambda r: r.get("x") == 2, kind="a")
    assert len(got) == 1 and got[0].time == 3.0


def test_first_after():
    t = make_log()
    assert t.first_after(2.5).time == 3.0
    assert t.first_after(2.5, kind="c").time == 4.0
    assert t.first_after(2.5, node="n1").time == 3.0
    assert t.first_after(10.0) is None


def test_first_after_inclusive():
    t = make_log()
    assert t.first_after(2.0).time == 2.0


def test_last_before():
    t = make_log()
    assert t.last_before(2.5).time == 2.0
    assert t.last_before(3.5, kind="a").time == 3.0
    assert t.last_before(0.5) is None


def test_record_returns_record():
    t = TraceLog()
    rec = t.record(5.0, "n", "k", foo="bar")
    assert rec.get("foo") == "bar"
    assert rec.get("missing", 7) == 7


def test_clear():
    t = make_log()
    t.clear()
    assert len(t) == 0
    assert t.of_kind("a") == []


def test_subscribe_sees_every_new_record():
    t = TraceLog()
    seen = []
    t.subscribe(lambda rec: seen.append((rec.kind, rec.node)))
    t.record(1.0, "n1", "a")
    t.record(2.0, "n2", "b", extra=1)
    assert seen == [("a", "n1"), ("b", "n2")]


def test_listener_fires_after_record_is_queryable():
    t = TraceLog()
    counts = []
    t.subscribe(lambda rec: counts.append(len(t.of_kind(rec.kind))))
    t.record(1.0, "n1", "a")
    t.record(2.0, "n1", "a")
    assert counts == [1, 2]  # the record is already indexed when heard


def test_unsubscribe_stops_delivery():
    t = TraceLog()
    seen = []
    listener = lambda rec: seen.append(rec.kind)  # noqa: E731
    t.subscribe(listener)
    t.record(1.0, "n1", "a")
    t.unsubscribe(listener)
    t.unsubscribe(listener)  # double removal is a no-op
    t.record(2.0, "n1", "b")
    assert seen == ["a"]
