"""Runtime trace-kind registry guard.

``tools/repolint`` cross-checks trace kinds statically; these tests pin
the runtime half of the contract: a typo'd kind handed to a storage gate
or a safety hook fails loudly instead of silently blinding the consumer.
"""

import warnings

import pytest

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.experiments.common import make_policy_factory
from repro.scenarios import safety as safety_mod
from repro.scenarios.safety import HOOK_KINDS, SafetyChecker
from repro.sim import tracing as tracing_mod
from repro.sim.trace_kinds import TRACE_KINDS
from repro.sim.tracing import TraceLog


def test_registry_covers_all_hook_kinds():
    # Same invariant repolint checks statically; pinned at runtime too so
    # an edit that skips the linter still cannot ship a blind hook.
    assert HOOK_KINDS <= TRACE_KINDS


def test_registry_contains_core_measurement_kinds():
    assert {
        "become_leader",
        "election_timeout",
        "fault_leader_pause",
        "stall_pause",
    } <= TRACE_KINDS


def test_keep_kinds_rejects_typod_kind():
    log = TraceLog()
    with pytest.raises(ValueError, match="becom_leader"):
        log.keep_kinds({"becom_leader"})  # typo'd "become_leader"
    # The failed call must not have installed a partial gate.
    assert log.kept_kinds is None
    assert log.record(1.0, "n1", "become_leader", term=1) is not None


def test_keep_kinds_accepts_registered_and_synthetic_kinds():
    log = TraceLog()
    log.keep_kinds({"become_leader", "election_timeout"})
    assert log.kept_kinds == {"become_leader", "election_timeout"}
    log.keep_kinds({"synthetic_test_kind"}, validate=False)
    assert log.kept_kinds == {"synthetic_test_kind"}
    log.keep_kinds(None)
    assert log.kept_kinds is None


def test_wants_warns_once_per_unregistered_kind():
    log = TraceLog()
    tracing_mod._WARNED_KINDS.discard("wants_typo_kind")
    with pytest.warns(RuntimeWarning, match="wants_typo_kind"):
        log.wants("wants_typo_kind")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        log.wants("wants_typo_kind")  # second probe: no warning
        log.wants("become_leader")  # registered: never warns


def test_safety_checker_install_rejects_typod_hook_kind(monkeypatch):
    cluster = build_cluster(
        ClusterConfig(n_nodes=3, seed=7, rtt_ms=50.0),
        make_policy_factory("raft"),
    )
    checker = SafetyChecker(cluster)
    monkeypatch.setattr(
        safety_mod, "HOOK_KINDS", HOOK_KINDS | {"proces_paused"}
    )
    with pytest.raises(ValueError, match="proces_paused"):
        checker.install(event_hooks=True)
    # The aborted install must not have left a half-armed checker.
    assert not checker._installed and not checker._hooked
