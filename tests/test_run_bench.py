"""benchmarks/run_bench.py: snapshot comparison and regression gating."""

import json
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
RUN_BENCH = REPO / "benchmarks" / "run_bench.py"


def _snapshot(path: pathlib.Path, means: dict[str, float]) -> pathlib.Path:
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {"fullname": name, "stats": {"mean": mean}}
                    for name, mean in means.items()
                ]
            }
        )
    )
    return path


def _compare(old, new, *extra):
    return subprocess.run(
        [sys.executable, str(RUN_BENCH), "--compare-only", str(old), str(new), *extra],
        capture_output=True,
        text=True,
    )


@pytest.fixture
def snapshots(tmp_path):
    old = _snapshot(tmp_path / "old.json", {"t::a": 0.010, "t::b": 0.020})
    return old, tmp_path


def test_regression_fails(snapshots):
    old, tmp = snapshots
    new = _snapshot(tmp / "new.json", {"t::a": 0.0125, "t::b": 0.020})
    proc = _compare(old, new)
    assert proc.returncode == 1
    assert "REGRESSION" in proc.stdout


def test_within_threshold_passes(snapshots):
    old, tmp = snapshots
    new = _snapshot(tmp / "new.json", {"t::a": 0.0115, "t::b": 0.019})
    proc = _compare(old, new)
    assert proc.returncode == 0, proc.stdout


def test_custom_threshold(snapshots):
    old, tmp = snapshots
    new = _snapshot(tmp / "new.json", {"t::a": 0.0125, "t::b": 0.020})
    proc = _compare(old, new, "--threshold", "0.5")
    assert proc.returncode == 0, proc.stdout


def test_no_fail_flag(snapshots):
    old, tmp = snapshots
    new = _snapshot(tmp / "new.json", {"t::a": 0.1, "t::b": 0.1})
    proc = _compare(old, new, "--no-fail")
    assert proc.returncode == 0


def test_new_and_dropped_benchmarks_reported(snapshots):
    old, tmp = snapshots
    new = _snapshot(tmp / "new.json", {"t::a": 0.010, "t::c": 0.005})
    proc = _compare(old, new)
    assert proc.returncode == 0
    assert "(new)" in proc.stdout
    assert "dropped" in proc.stdout


def _memory_snapshot(path: pathlib.Path, benches: dict[str, dict]) -> pathlib.Path:
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {
                        "fullname": name,
                        "stats": {"mean": payload.get("mean", 0.01)},
                        "extra_info": payload.get("extra", {}),
                    }
                    for name, payload in benches.items()
                ]
            }
        )
    )
    return path


def test_compare_only_prints_memory_trajectory(tmp_path):
    old = _memory_snapshot(
        tmp_path / "old.json",
        {"t::mem": {"extra": {"tracemalloc_peak_kb": 900.0, "max_retained_entries": 180}}},
    )
    new = _memory_snapshot(
        tmp_path / "new.json",
        {"t::mem": {"extra": {"tracemalloc_peak_kb": 450.0, "max_retained_entries": 120}}},
    )
    proc = _compare(old, new)
    assert proc.returncode == 0
    assert "memory trajectory" in proc.stdout
    assert "max_retained_entries=120 (was 180)" in proc.stdout
    assert "tracemalloc_peak_kb=450" in proc.stdout


def test_memory_trajectory_never_gates(tmp_path):
    """A memory blow-up is reported but only timing regressions gate."""
    old = _memory_snapshot(
        tmp_path / "old.json", {"t::mem": {"extra": {"tracemalloc_peak_kb": 100.0}}}
    )
    new = _memory_snapshot(
        tmp_path / "new.json", {"t::mem": {"extra": {"tracemalloc_peak_kb": 9_000.0}}}
    )
    proc = _compare(old, new)
    assert proc.returncode == 0
    assert "tracemalloc_peak_kb=9000 (was 100)" in proc.stdout


def test_snapshots_without_memory_info_stay_clean(tmp_path):
    old = _snapshot(tmp_path / "old.json", {"t::a": 0.010})
    new = _snapshot(tmp_path / "new.json", {"t::a": 0.010})
    proc = _compare(old, new)
    assert proc.returncode == 0
    assert "memory trajectory" not in proc.stdout
