"""benchmarks/run_bench.py: snapshot comparison and regression gating."""

import json
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
RUN_BENCH = REPO / "benchmarks" / "run_bench.py"


def _snapshot(path: pathlib.Path, means: dict[str, float]) -> pathlib.Path:
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {"fullname": name, "stats": {"mean": mean}}
                    for name, mean in means.items()
                ]
            }
        )
    )
    return path


def _compare(old, new, *extra):
    return subprocess.run(
        [sys.executable, str(RUN_BENCH), "--compare-only", str(old), str(new), *extra],
        capture_output=True,
        text=True,
    )


@pytest.fixture
def snapshots(tmp_path):
    old = _snapshot(tmp_path / "old.json", {"t::a": 0.010, "t::b": 0.020})
    return old, tmp_path


def test_regression_fails(snapshots):
    old, tmp = snapshots
    new = _snapshot(tmp / "new.json", {"t::a": 0.0125, "t::b": 0.020})
    proc = _compare(old, new)
    assert proc.returncode == 1
    assert "REGRESSION" in proc.stdout


def test_within_threshold_passes(snapshots):
    old, tmp = snapshots
    new = _snapshot(tmp / "new.json", {"t::a": 0.0115, "t::b": 0.019})
    proc = _compare(old, new)
    assert proc.returncode == 0, proc.stdout


def test_custom_threshold(snapshots):
    old, tmp = snapshots
    new = _snapshot(tmp / "new.json", {"t::a": 0.0125, "t::b": 0.020})
    proc = _compare(old, new, "--threshold", "0.5")
    assert proc.returncode == 0, proc.stdout


def test_no_fail_flag(snapshots):
    old, tmp = snapshots
    new = _snapshot(tmp / "new.json", {"t::a": 0.1, "t::b": 0.1})
    proc = _compare(old, new, "--no-fail")
    assert proc.returncode == 0


def test_new_and_dropped_benchmarks_reported(snapshots):
    old, tmp = snapshots
    new = _snapshot(tmp / "new.json", {"t::a": 0.010, "t::c": 0.005})
    proc = _compare(old, new)
    assert proc.returncode == 0
    assert "(new)" in proc.stdout
    assert "dropped" in proc.stdout
