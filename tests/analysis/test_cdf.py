"""Empirical CDF."""

import numpy as np
from hypothesis import given, strategies as st

from repro.analysis.cdf import empirical_cdf


def test_empty():
    xs, ps = empirical_cdf([])
    assert xs.size == 0 and ps.size == 0


def test_single_value():
    xs, ps = empirical_cdf([5.0])
    assert xs.tolist() == [5.0]
    assert ps.tolist() == [1.0]


def test_sorted_output_with_fractions():
    xs, ps = empirical_cdf([3.0, 1.0, 2.0, 4.0])
    assert xs.tolist() == [1.0, 2.0, 3.0, 4.0]
    assert ps.tolist() == [0.25, 0.5, 0.75, 1.0]


def test_duplicates_handled():
    xs, ps = empirical_cdf([1.0, 1.0, 2.0])
    assert xs.tolist() == [1.0, 1.0, 2.0]
    assert ps[-1] == 1.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
def test_cdf_properties(vals):
    xs, ps = empirical_cdf(vals)
    assert np.all(np.diff(xs) >= 0)
    assert np.all(np.diff(ps) > 0)
    assert ps[-1] == 1.0
    assert ps[0] > 0.0
