"""ASCII chart rendering."""

import math

import numpy as np
import pytest

from repro.analysis.asciiplot import cdf_chart, line_chart
from repro.analysis.cdf import empirical_cdf


def test_line_chart_contains_title_and_legend():
    out = line_chart(
        {"rtt": ([0, 1, 2], [50, 100, 150])},
        title="RTT over time",
        x_label="s",
    )
    assert "RTT over time" in out
    assert "* rtt" in out
    assert "(s)" in out


def test_line_chart_multiple_series_distinct_markers():
    out = line_chart(
        {
            "a": ([0, 1], [0, 1]),
            "b": ([0, 1], [1, 0]),
        }
    )
    assert "* a" in out
    assert "o b" in out
    assert "*" in out.splitlines()[0] or any("*" in ln for ln in out.splitlines())


def test_line_chart_y_axis_labels_extremes():
    out = line_chart({"s": ([0, 1], [10.0, 90.0])})
    assert "90 |" in out
    assert "10 |" in out


def test_line_chart_handles_nans():
    out = line_chart({"s": ([0, 1, 2], [1.0, math.nan, 3.0])})
    assert out  # renders without error


def test_line_chart_empty_rejected():
    with pytest.raises(ValueError):
        line_chart({})
    with pytest.raises(ValueError):
        line_chart({"s": ([], [])})
    with pytest.raises(ValueError):
        line_chart({"s": ([0.0], [math.nan])})


def test_line_chart_constant_series():
    out = line_chart({"s": ([0, 1, 2], [5.0, 5.0, 5.0])})
    assert "*" in out


def test_line_chart_dimensions():
    out = line_chart({"s": ([0, 1], [0, 1])}, width=30, height=8)
    lines = out.splitlines()
    # 8 grid rows + axis + x labels + legend
    assert len(lines) == 11
    assert all(len(ln) <= 30 + 14 for ln in lines[:8])


def test_cdf_chart_renders():
    xs1, ps1 = empirical_cdf([100.0, 200.0, 300.0])
    xs2, ps2 = empirical_cdf([50.0, 60.0, 70.0])
    out = cdf_chart({"raft": (xs1, ps1), "dynatune": (xs2, ps2)}, title="OTS CDF")
    assert "OTS CDF" in out
    assert "* raft" in out
    assert "o dynatune" in out
    assert "P(X<=x)" in out


def test_cdf_chart_numpy_input():
    xs, ps = empirical_cdf(np.array([1.0, 2.0]))
    assert cdf_chart({"s": (xs, ps)})
