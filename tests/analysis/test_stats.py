"""Summary statistics and bootstrap CIs."""

import numpy as np
import pytest

from repro.analysis.stats import bootstrap_mean_ci, summarize


def test_summarize_known_values():
    s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
    assert s.n == 5
    assert s.mean == 3.0
    assert s.p50 == 3.0
    assert s.minimum == 1.0
    assert s.maximum == 5.0
    assert s.std == pytest.approx(np.std([1, 2, 3, 4, 5], ddof=1))


def test_summarize_single_value():
    s = summarize([7.0])
    assert s.std == 0.0
    assert s.p99 == 7.0


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_summary_str_roundtrip():
    s = summarize([1.0, 2.0])
    assert "n=2" in str(s)


def test_bootstrap_ci_contains_mean_for_tight_sample():
    data = np.full(100, 5.0)
    lo, hi = bootstrap_mean_ci(data)
    assert lo == hi == 5.0


def test_bootstrap_ci_brackets_true_mean():
    rng = np.random.default_rng(0)
    data = rng.normal(100.0, 10.0, size=500)
    lo, hi = bootstrap_mean_ci(data, seed=1)
    assert lo < data.mean() < hi
    assert hi - lo < 5.0


def test_bootstrap_ci_deterministic_given_seed():
    data = [1.0, 2.0, 3.0, 10.0]
    assert bootstrap_mean_ci(data, seed=7) == bootstrap_mean_ci(data, seed=7)


def test_bootstrap_validation():
    with pytest.raises(ValueError):
        bootstrap_mean_ci([])
    with pytest.raises(ValueError):
        bootstrap_mean_ci([1.0], confidence=1.5)
