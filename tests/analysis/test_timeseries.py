"""Time-series binning and interval coverage."""

import math

import numpy as np
import pytest

from repro.analysis.timeseries import bin_series, interval_coverage


def test_bin_series_averages_within_bins():
    t = [0.0, 100.0, 900.0, 1100.0]
    v = [1.0, 3.0, 5.0, 7.0]
    centers, means = bin_series(t, v, bin_ms=1000.0, t_start=0.0, t_end=2000.0)
    assert means[0] == pytest.approx(3.0)  # (1+3+5)/3
    assert means[1] == pytest.approx(7.0)


def test_bin_series_empty_bins_are_nan():
    centers, means = bin_series([100.0], [1.0], bin_ms=100.0, t_start=0.0, t_end=500.0)
    assert math.isnan(means[3])


def test_bin_series_validation():
    with pytest.raises(ValueError):
        bin_series([1.0], [1.0, 2.0], bin_ms=10.0)
    with pytest.raises(ValueError):
        bin_series([1.0], [1.0], bin_ms=0.0)


def test_bin_series_empty_input():
    centers, means = bin_series([], [], bin_ms=10.0, t_start=0.0, t_end=30.0)
    assert np.isnan(means).all()


def test_interval_coverage_full_and_partial():
    centers, cov = interval_coverage(
        [(100.0, 300.0)], t_start=0.0, t_end=400.0, bin_ms=100.0
    )
    assert cov.tolist() == [0.0, 1.0, 1.0, 0.0]


def test_interval_coverage_partial_bin():
    centers, cov = interval_coverage(
        [(150.0, 250.0)], t_start=0.0, t_end=300.0, bin_ms=100.0
    )
    assert cov.tolist() == [0.0, 0.5, 0.5]


def test_interval_coverage_overlapping_intervals_additive_capped_by_use():
    centers, cov = interval_coverage(
        [(0.0, 100.0), (0.0, 100.0)], t_start=0.0, t_end=100.0, bin_ms=100.0
    )
    # Two identical intervals double-count; callers pass disjoint intervals
    # (leaderless periods are disjoint by construction).
    assert cov[0] == pytest.approx(2.0)


def test_interval_coverage_outside_range_ignored():
    centers, cov = interval_coverage(
        [(1000.0, 2000.0)], t_start=0.0, t_end=500.0, bin_ms=100.0
    )
    assert cov.sum() == 0.0


def test_interval_coverage_validation():
    with pytest.raises(ValueError):
        interval_coverage([], t_start=0.0, t_end=1.0, bin_ms=0.0)
