"""SimDiskStorage semantics: WAL frontier, fault draws, recovery repair."""

import dataclasses

import numpy as np
import pytest

from repro.raft.state_machine import kv_put
from repro.sim.process import ProcessState
from repro.storage import DiskFaultConfig, SimDiskStorage
from repro.storage.base import DiskCorruptionError
from tests.conftest import make_raft_cluster


def disk_cluster(n=3, *, faults=None, seed=5, **kwargs):
    return make_raft_cluster(
        n, seed=seed, storage="simdisk", disk_faults=faults, **kwargs
    )


def pump(c, client, n, settle_ms=3000):
    for i in range(n):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(settle_ms)


# --------------------------------------------------------------------- #
# the zero-fault contract
# --------------------------------------------------------------------- #


def test_fault_free_simdisk_matches_ideal_run():
    """With every fault probability 0, the simdisk backend is pure
    bookkeeping: the same seed produces the same cluster history as the
    ideal backend, event for event."""

    def run(storage):
        c = make_raft_cluster(3, seed=9, storage=storage)
        client = c.add_client("cl")
        c.run_until_leader()
        pump(c, client, 20)
        return c

    ideal, disk = run("ideal"), run("simdisk")
    assert [(r.time, r.node, r.kind) for r in ideal.trace.all()] == [
        (r.time, r.node, r.kind) for r in disk.trace.all()
    ]
    for n in ideal.names:
        assert (
            ideal.node(n).state_machine.snapshot()
            == disk.node(n).state_machine.snapshot()
        )


def test_durable_view_lags_pending_until_sync():
    """Writes are invisible to the durable view until the fsync barrier."""
    store = SimDiskStorage(np.random.default_rng(7))
    c = disk_cluster()
    store.attach(c.node("n1"))  # sync() needs a node for fault plumbing
    store.save_hard_state(5, "n2")
    assert store.durable_view().term == 0  # pending, not durable
    assert store.sync()
    view = store.durable_view()
    assert (view.term, view.voted_for) == (5, "n2")


def test_synced_state_survives_crash_pending_tail_does_not():
    c = disk_cluster()
    client = c.add_client("cl")
    c.run_until_leader()
    pump(c, client, 10)
    follower = next(n for n in c.names if c.node(n).role.name != "LEADER")
    node = c.node(follower)
    synced = node.storage.durable_view()
    assert synced.entry_terms  # replication reached the disk
    # A pending record written after the last barrier is lost by the crash.
    node.storage.save_hard_state(99, None)
    node.crash()
    node.recover()
    assert node.current_term == synced.term
    assert node.log.last_index == max(synced.entry_terms)


def test_fault_config_validation():
    with pytest.raises(ValueError):
        DiskFaultConfig(p_crash_point=1.5)
    with pytest.raises(ValueError):
        DiskFaultConfig(stall_ms=0.0)
    with pytest.raises(ValueError):
        DiskFaultConfig(auto_recover_ms=-1.0)


# --------------------------------------------------------------------- #
# the DiskFault scenario step
# --------------------------------------------------------------------- #


def test_disk_fault_step_swaps_and_reverts_fault_config():
    from repro.scenarios.scenario import Scenario
    from repro.scenarios.steps import DiskFault

    c = disk_cluster()
    Scenario(
        "window",
        [
            DiskFault(
                at_ms=100.0,
                node="n2",
                p_torn_tail=0.5,
                p_io_error=0.01,
                duration_ms=500.0,
            )
        ],
    ).install(c)
    c.run_for(300)
    faults = c.node("n2").storage.faults
    assert faults.p_torn_tail == 0.5 and faults.p_io_error == 0.01
    assert c.node("n1").storage.faults.p_torn_tail == 0.0  # targeted, not global
    c.run_for(500)
    assert c.node("n2").storage.faults.p_torn_tail == 0.0  # window closed


def test_disk_fault_step_skips_on_ideal_storage():
    from repro.scenarios.scenario import Scenario
    from repro.scenarios.steps import DiskFault

    c = make_raft_cluster(3, seed=5)  # ideal backend
    Scenario(
        "window", [DiskFault(at_ms=50.0, node="n1", p_crash_point=0.5)]
    ).install(c)
    c.run_for(200)
    recs = c.trace.of_kind("scenario_step")
    assert any(r.get("skipped") and r.get("step") == "disk_fault" for r in recs)


# --------------------------------------------------------------------- #
# injected faults
# --------------------------------------------------------------------- #


def set_faults(node, **kwargs):
    node.storage.faults = dataclasses.replace(DiskFaultConfig(), **kwargs)


def test_crash_point_fires_at_persist_and_auto_recovers():
    c = disk_cluster()
    client = c.add_client("cl")
    leader = c.run_until_leader()
    pump(c, client, 5)
    follower = next(n for n in c.names if n != leader)
    node = c.node(follower)
    set_faults(node, p_crash_point=1.0, auto_recover_ms=400.0)
    client.submit(kv_put("x", 1))
    c.run_for(200)
    assert node.state is ProcessState.CRASHED
    assert c.trace.of_kind("disk_crash_point")
    set_faults(node)  # let the recovered incarnation persist normally
    c.run_for(3000)
    assert node.state is ProcessState.RUNNING
    recs = c.trace.of_kind("disk_recover")
    assert recs and recs[0].node == follower
    assert node.state_machine.snapshot() == c.node(leader).state_machine.snapshot()


def test_io_error_fail_stops_the_node():
    c = disk_cluster()
    client = c.add_client("cl")
    leader = c.run_until_leader()
    pump(c, client, 3)
    follower = next(n for n in c.names if n != leader)
    node = c.node(follower)
    set_faults(node, p_io_error=1.0)
    client.submit(kv_put("x", 1))
    c.run_for(500)
    assert node.state is ProcessState.CRASHED
    assert c.trace.of_kind("disk_io_error")


def test_stall_freezes_then_resumes():
    c = disk_cluster()
    client = c.add_client("cl")
    leader = c.run_until_leader()
    pump(c, client, 3)
    follower = next(n for n in c.names if n != leader)
    node = c.node(follower)
    set_faults(node, p_stall=1.0, stall_ms=100.0)
    client.submit(kv_put("x", 1))
    c.run_for(30)
    assert node.state is ProcessState.PAUSED  # frozen around the fsync
    set_faults(node)
    c.run_for(3000)
    assert node.state is ProcessState.RUNNING
    assert c.trace.of_kind("disk_stall")
    assert node.state_machine.snapshot() == c.node(leader).state_machine.snapshot()


def test_torn_tail_is_truncated_and_traced_at_recovery():
    c = disk_cluster()
    client = c.add_client("cl")
    leader = c.run_until_leader()
    pump(c, client, 5)
    follower = next(n for n in c.names if n != leader)
    node = c.node(follower)
    set_faults(node, p_crash_point=1.0, p_torn_tail=1.0, auto_recover_ms=400.0)
    client.submit(kv_put("x", 1))
    c.run_for(200)
    assert node.state is ProcessState.CRASHED
    set_faults(node)
    c.run_for(3000)
    assert node.state is ProcessState.RUNNING
    torn = c.trace.of_kind("wal_truncated")
    assert torn and torn[0].node == follower and torn[0].get("records") == 1
    # Truncation is safe: the torn record was never covered by a sync ack,
    # and replication repairs the follower right back.
    assert node.state_machine.snapshot() == c.node(leader).state_machine.snapshot()


def test_corruption_below_synced_frontier_refuses_recovery():
    """A checksum failure below the synced frontier means acked state is
    unrecoverable: the node must refuse to rejoin (alarm + stay down),
    never silently truncate its way past the damage."""
    c = disk_cluster()
    client = c.add_client("cl")
    leader = c.run_until_leader()
    pump(c, client, 10)
    follower = next(n for n in c.names if n != leader)
    node = c.node(follower)
    set_faults(node, p_bitflip=1.0, auto_recover_ms=300.0)
    node.crash()
    c.run_for(2000)
    recs = c.trace.of_kind("disk_corruption")
    assert recs and recs[0].node == follower
    assert node.state is ProcessState.CRASHED  # refused, and stays down
    assert not c.trace.of_kind("wal_truncated")  # no silent repair
    with pytest.raises(DiskCorruptionError):
        node.storage.recover()
    # The remaining quorum keeps serving without the refusing replica.
    client.submit(kv_put("alive", 1))
    c.run_for(2000)
    assert any(r.command.key == "alive" for r in client.completed)
