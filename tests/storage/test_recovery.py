"""Crash-point recovery: serving state, compound atomicity, transfer races."""

import dataclasses

from repro.raft.messages import ClientReadRequest
from repro.raft.state_machine import kv_get, kv_put
from repro.raft.types import RaftConfig, Role
from repro.sim.process import ProcessState
from repro.storage import DiskFaultConfig
from tests.conftest import make_raft_cluster


def disk_cluster(n=3, *, seed=5, **kwargs):
    return make_raft_cluster(
        n, seed=seed, storage="simdisk", **kwargs
    )


def pump(c, client, n, settle_ms=3000):
    for i in range(n):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(settle_ms)


def set_faults(node, **kwargs):
    node.storage.faults = dataclasses.replace(DiskFaultConfig(), **kwargs)


# --------------------------------------------------------------------- #
# recovery clears in-flight serving state (crash mid-ReadIndex round)
# --------------------------------------------------------------------- #


def test_crash_mid_readindex_round_clears_serving_state():
    """A leader that crashes with a ReadIndex round in flight must not
    come back holding the round: a quorum confirmation gathered by the
    pre-crash incarnation says nothing about the post-recovery one, so
    serving a read anchored to it would be a stale read."""
    c = disk_cluster(5)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    pump(c, client, 5)
    node = c.node(leader)
    served_before = node.metrics.reads_served_readindex
    # Open a round: the read registers and the probes broadcast, but no
    # ack can return within 1 ms of virtual time.
    node.deliver("cl", ClientReadRequest(request_id=999, command=kv_get("k0")))
    c.run_for(1)
    assert node._read_round is not None
    node.crash()
    node.recover()
    # The round and its buffered reads died with the incarnation, and the
    # recovered node is a follower — no leader-side serving state at all.
    assert node._read_round is None
    assert node._read_buf == []
    assert node.role is Role.FOLLOWER
    c.run_for(4000)
    # Late acks from the pre-crash probes must not have served anything
    # through the dead round.
    assert node.metrics.reads_served_readindex == served_before
    # The cluster itself moved on and still serves correct reads.
    client.submit(kv_get("k0"), read=True)
    c.run_for(2000)
    assert client.completed and client.completed[-1].result == 0


# --------------------------------------------------------------------- #
# compound persist atomicity
# --------------------------------------------------------------------- #


def test_snapshot_then_compact_atomic_across_crash_point():
    """Snapshot and compact are journaled as one ordered pending pair; a
    crash at any persist point recovers a consistent (snapshot, frontier)
    pair — the snapshot at or ahead of the log frontier, never behind."""
    c = disk_cluster(
        3,
        raft=RaftConfig(compaction_threshold=15, compaction_retain_margin=3),
    )
    client = c.add_client("cl")
    leader = c.run_until_leader()
    node = c.node(leader)
    # Crash at persist points while compaction pressure is on: some sync
    # covering a snapshot+compact pair will be the one that dies.
    set_faults(node, p_crash_point=0.3, auto_recover_ms=300.0)
    for i in range(60):
        client.submit(kv_put(f"k{i}", i))
        if i % 10 == 9:
            c.run_for(800)
    set_faults(node)
    c.run_for(6000)
    assert c.trace.of_kind("disk_crash_point")
    assert c.trace.of_kind("disk_recover")
    for n in c.names:
        log = c.node(n).log
        snap = c.node(n).snapshot
        if log.last_included_index > 0:
            assert snap is not None
            assert snap.last_included_index >= log.last_included_index
    # And the cluster converged to the full workload despite the storms.
    lead = c.run_until_leader()
    machines = {
        n: c.node(n).state_machine.snapshot()
        for n in c.names
        if c.node(n).state is ProcessState.RUNNING
    }
    assert machines[lead] == dict(
        sorted({f"k{i}": i for i in range(60)}.items())
    ) or len(machines[lead]) == 60


# --------------------------------------------------------------------- #
# torn membership entry at the WAL tail
# --------------------------------------------------------------------- #


def test_torn_config_entry_at_tail_rolls_back_cleanly():
    """A membership change whose config entry tears at the WAL tail was
    never acknowledged (the covering sync died), so recovery truncates it
    and the old configuration stays in force everywhere."""
    c = disk_cluster(3)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    pump(c, client, 5)
    node = c.node(leader)
    victim = next(n for n in c.names if n != leader)
    voters_before = set(node._voters)
    last_before = node.log.last_index
    set_faults(node, p_crash_point=1.0, p_torn_tail=1.0)
    # The proposal appends the config entry and hits its persist barrier,
    # which is exactly where the crash point fires; the entry tears.
    assert node.propose_config_change("remove", victim) is False
    assert node.state is ProcessState.CRASHED
    set_faults(node)
    node.recover()
    torn = c.trace.of_kind("wal_truncated")
    assert torn and torn[-1].node == leader
    # The torn entry is gone and the membership never changed.
    assert node.log.last_index == last_before
    assert set(node._voters) == voters_before
    c.run_for(4000)
    for n in c.names:
        assert set(c.node(n)._voters) == voters_before
    client.submit(kv_put("after", 1))
    c.run_for(2000)
    assert any(r.command.key == "after" for r in client.completed)


# --------------------------------------------------------------------- #
# crash during receiver-side snapshot transfer
# --------------------------------------------------------------------- #


def test_crash_at_snapshot_install_persist_point_retries_clean():
    """The receiver dies at the persist point covering an InstallSnapshot
    (snapshot + log-reset pending pair): the ack never leaves, recovery
    sees the old consistent state, and the leader's retry lands."""
    c = disk_cluster(
        5,
        raft=RaftConfig(compaction_threshold=20, compaction_retain_margin=4),
    )
    client = c.add_client("cl")
    leader = c.run_until_leader()
    c.run_for(500)
    lagger = next(n for n in c.names if n != leader)
    c.node(lagger).crash()
    pump(c, client, 80, settle_ms=9000)
    lead = c.node(leader)
    assert lead.log.first_index > lead.match_index[lagger] + 1
    node = c.node(lagger)
    # First persist with a non-empty pending tail after rejoin is the
    # snapshot install itself — that sync crashes.
    set_faults(node, p_crash_point=1.0, auto_recover_ms=400.0)
    node.recover()
    c.run_for(1500)
    assert c.trace.of_kind("disk_crash_point")
    # Mid-transfer crash left a consistent pair: nothing half-installed.
    snap_idx = (
        node.snapshot.last_included_index if node.snapshot is not None else 0
    )
    assert snap_idx >= node.log.last_included_index
    set_faults(node)
    c.run_for(6000)
    assert node.state is ProcessState.RUNNING
    assert node.metrics.snapshots_installed >= 1
    assert node.state_machine.snapshot() == lead.state_machine.snapshot()
    assert node.commit_index == lead.commit_index


# --------------------------------------------------------------------- #
# leader recovery basics under the durable engine
# --------------------------------------------------------------------- #


def test_recovered_leader_keeps_every_synced_entry():
    c = disk_cluster(3)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    pump(c, client, 20)
    node = c.node(leader)
    view = node.storage.durable_view()
    assert max(view.entry_terms) == node.log.last_index  # acked ⇒ synced
    node.crash()
    node.recover()
    assert node.current_term == view.term
    assert node.log.last_index == max(view.entry_terms)
    for idx, term in view.entry_terms.items():
        assert node.log.term_at(idx) == term
    c.run_for(4000)
    lead = c.run_until_leader()
    assert c.node(lead).state_machine.snapshot()["k19"] == 19
