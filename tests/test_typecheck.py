"""Strict-typing island: ``mypy --strict`` over the kernel and protocol core.

The island (``repro.raft``, ``repro.sim``) is declared in ``mypy.ini`` at
the repo root; this test runs it when mypy is installed and skips
otherwise, so environments without the checker (the pinned reproduction
container ships without it) still run the rest of the suite unchanged.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed in this environment",
)
def test_strict_island_is_clean():
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO_ROOT / "mypy.ini"),
            "src/repro/raft",
            "src/repro/sim",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        "mypy --strict island (repro.raft, repro.sim) reported errors:\n"
        + proc.stdout
        + proc.stderr
    )
