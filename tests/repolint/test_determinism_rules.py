"""Rule family 1 (determinism): true positives and near-miss guards."""

from conftest import lint, rule_hits

from tools.repolint import DEFAULT_CONFIG
from tools.repolint.rules.determinism import (
    ForbiddenNondeterminismRule,
    UnorderedIterationRule,
)

FORBIDDEN = [ForbiddenNondeterminismRule(DEFAULT_CONFIG)]
UNORDERED = [UnorderedIterationRule(DEFAULT_CONFIG)]


# -- determinism-forbidden-call ------------------------------------------- #


def test_wall_clock_in_sim_scope_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/sim/sched.py": """\
            import time

            def stamp() -> float:
                return time.time()
            """
        },
        rules=FORBIDDEN,
    )
    (hit,) = rule_hits(report, "determinism-forbidden-call")
    assert hit.symbol == "time.time"
    assert hit.path == "repro/sim/sched.py"


def test_aliased_wall_clock_is_resolved_and_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/x.py": """\
            import time as t

            def stamp() -> float:
                return t.monotonic()
            """
        },
        rules=FORBIDDEN,
    )
    (hit,) = rule_hits(report, "determinism-forbidden-call")
    assert hit.symbol == "time.monotonic"


def test_from_import_entropy_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/net/x.py": """\
            from os import urandom

            def token() -> bytes:
                return urandom(8)
            """
        },
        rules=FORBIDDEN,
    )
    (hit,) = rule_hits(report, "determinism-forbidden-call")
    assert hit.symbol == "os.urandom"


def test_stdlib_random_import_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/fuzz/x.py": """\
            import random

            def roll() -> float:
                return random.random()
            """
        },
        rules=FORBIDDEN,
    )
    hits = rule_hits(report, "determinism-forbidden-call")
    assert any(h.symbol == "random" for h in hits)


def test_unseeded_default_rng_is_flagged_seeded_is_not(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/dynatune/x.py": """\
            import numpy as np

            def bad():
                return np.random.default_rng()

            def good(seed: int):
                return np.random.default_rng(seed)
            """
        },
        rules=FORBIDDEN,
    )
    hits = rule_hits(report, "determinism-forbidden-call")
    assert len(hits) == 1
    assert hits[0].symbol == "default_rng"


def test_wall_clock_outside_sim_scopes_is_not_flagged(tmp_path):
    # Analysis/plotting code measures real elapsed time legitimately.
    report = lint(
        tmp_path,
        {
            "repro/analysis/bench.py": """\
            import time

            def stamp() -> float:
                return time.time()
            """
        },
        rules=FORBIDDEN,
    )
    assert report.findings == []


def test_loop_now_is_not_mistaken_for_wall_clock(tmp_path):
    # Near miss: `self.loop.now` and a local helper *named* time().
    report = lint(
        tmp_path,
        {
            "repro/sim/x.py": """\
            def virtual_time(loop) -> float:
                return loop.now

            def time() -> float:
                return 0.0

            def use() -> float:
                return time()
            """
        },
        rules=FORBIDDEN,
    )
    assert report.findings == []


# -- determinism-unordered-iter ------------------------------------------- #


def test_set_iteration_feeding_schedule_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/sim/x.py": """\
            def kick(loop, peers: set) -> None:
                for p in peers | {"extra"}:
                    pass
                for p in set(peers):
                    loop.schedule(1.0, p)
            """
        },
        rules=UNORDERED,
    )
    (hit,) = rule_hits(report, "determinism-unordered-iter")
    assert "schedule" in hit.message


def test_dict_items_feeding_send_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/x.py": """\
            def flush(network, pending: dict) -> None:
                for name, msg in pending.items():
                    network.send(name, msg)
            """
        },
        rules=UNORDERED,
    )
    (hit,) = rule_hits(report, "determinism-unordered-iter")
    assert "pending.items()" in hit.message


def test_sorted_wrapper_is_not_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/x.py": """\
            def flush(network, pending: dict) -> None:
                for name, msg in sorted(pending.items()):
                    network.send(name, msg)
            """
        },
        rules=UNORDERED,
    )
    assert report.findings == []


def test_iteration_without_sink_is_not_flagged(tmp_path):
    # Near miss: pure aggregation over a set is order-insensitive.
    report = lint(
        tmp_path,
        {
            "repro/raft/x.py": """\
            def tally(votes: dict) -> int:
                total = 0
                for v in votes.values():
                    total += v
                return total
            """
        },
        rules=UNORDERED,
    )
    assert report.findings == []


def test_self_attr_set_iteration_is_flagged_via_annotation(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/x.py": """\
            class Tracker:
                def __init__(self) -> None:
                    self.peers: set[str] = set()

                def ping(self, net) -> None:
                    for p in self.peers:
                        net.send(p, "ping")
            """
        },
        rules=UNORDERED,
    )
    (hit,) = rule_hits(report, "determinism-unordered-iter")
    assert "self.peers" in hit.message


def test_comprehension_argument_to_sink_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/sim/x.py": """\
            def emit(trace, now: float, peers: set) -> None:
                trace.record(now, "n", "k", order=[p for p in set(peers)])
            """
        },
        rules=UNORDERED,
    )
    (hit,) = rule_hits(report, "determinism-unordered-iter")
    assert "comprehension" in hit.message


def test_list_iteration_feeding_send_is_not_flagged(tmp_path):
    # Near miss: lists are ordered; only set/dict iteration is suspect.
    report = lint(
        tmp_path,
        {
            "repro/raft/x.py": """\
            def flush(network, pending: list) -> None:
                for msg in pending:
                    network.send("peer", msg)
            """
        },
        rules=UNORDERED,
    )
    assert report.findings == []
