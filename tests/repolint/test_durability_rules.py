"""Rule family 6 (durable-write hygiene): storage-backed mutators only."""

from conftest import lint, rule_hits

from tools.repolint import DEFAULT_CONFIG
from tools.repolint.rules.durability import DurableWriteRule

RULES = [DurableWriteRule(DEFAULT_CONFIG)]


def test_mutation_inside_designated_methods_passes(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/node.py": """\
            class RaftNode:
                def __init__(self) -> None:
                    self.snapshot = None

                def _on_client_request(self, m) -> None:
                    self.log.append_new(self.current_term, m.command)

                def _on_append_entries(self, m) -> None:
                    self.log.try_append(m.prev_index, m.prev_term, m.entries)

                def _maybe_compact(self) -> None:
                    self.snapshot = object()
                    self.log.compact(10)
            """
        },
        rules=RULES,
    )
    assert report.findings == []


def test_append_outside_mutators_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/node.py": """\
            class RaftNode:
                def _on_heartbeat(self, m) -> None:
                    self.log.append_new(self.current_term, None)
            """
        },
        rules=RULES,
    )
    (hit,) = rule_hits(report, "durable-write-hygiene")
    assert hit.symbol == "append_new"
    assert "_on_heartbeat" in hit.message


def test_aliased_mutation_is_flagged(tmp_path):
    # The hot-path alias form must not be an escape hatch.
    report = lint(
        tmp_path,
        {
            "repro/raft/node.py": """\
            class RaftNode:
                def _sneaky(self) -> None:
                    log = self.log
                    log.compact(5)
            """
        },
        rules=RULES,
    )
    (hit,) = rule_hits(report, "durable-write-hygiene")
    assert hit.symbol == "compact"


def test_cross_module_mutation_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/cluster/ops.py": """\
            def hammer(node) -> None:
                node.log.install_snapshot(10, 2)
            """
        },
        rules=RULES,
    )
    (hit,) = rule_hits(report, "durable-write-hygiene")
    assert hit.symbol == "install_snapshot"


def test_snapshot_write_outside_writers_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/node.py": """\
            class RaftNode:
                def _on_heartbeat(self, m) -> None:
                    self.snapshot = m.snapshot
            """
        },
        rules=RULES,
    )
    (hit,) = rule_hits(report, "durable-write-hygiene")
    assert hit.symbol == "snapshot"


def test_reads_and_other_receivers_are_not_flagged(tmp_path):
    # Near misses stay free: reading log state, mutators on non-log
    # receivers, and calls to a state machine's snapshot() method.
    report = lint(
        tmp_path,
        {
            "repro/raft/node.py": """\
            class RaftNode:
                def _on_heartbeat(self, m) -> None:
                    last = self.log.last_index
                    term = self.log.term_at(last)
                    data = self.state_machine.snapshot()
                    self.buffer.compact(5)
                    snap = self.snapshot
            """
        },
        rules=RULES,
    )
    assert report.findings == []


def test_suppression_comment_permits_deliberate_corruption(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/fuzz/inject.py": """\
            def corrupt(node) -> None:
                node.log.append_new(99, None)  # repolint: disable=durable-write-hygiene
            """
        },
        rules=RULES,
    )
    assert report.findings == []
    assert len(report.suppressed) == 1
