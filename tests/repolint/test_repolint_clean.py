"""Tier-1 gate: the shipped tree has zero non-baselined repolint findings.

Equivalent to ``python -m tools.repolint src/`` exiting 0 — run in-process
so the failure message carries the findings.
"""

from conftest import REPO_ROOT

from tools.repolint import Baseline, run_repolint

BASELINE_PATH = REPO_ROOT / "tools" / "repolint" / "baseline.json"


def test_src_tree_is_repolint_clean():
    baseline = Baseline.load(BASELINE_PATH)
    report = run_repolint(REPO_ROOT / "src", baseline=baseline)
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"repolint findings in src/:\n{rendered}"
    assert report.files_checked > 50  # sanity: the scan actually ran


def test_baseline_stays_small_and_justified():
    # The issue allows at most 5 grandfathered entries; today it is empty
    # (every real finding was fixed or carries an in-code suppression).
    baseline = Baseline.load(BASELINE_PATH)
    assert len(baseline) <= 5


def test_every_suppression_is_justified_in_code():
    # Suppressions must carry a justification comment within the two
    # lines above them — an audit trail, not a mute button.
    report = run_repolint(REPO_ROOT / "src")
    for f in report.suppressed:
        path = REPO_ROOT / "src" / f.path
        lines = path.read_text(encoding="utf-8").splitlines()
        context = "\n".join(lines[max(0, f.line - 4) : f.line])
        assert "#" in context, (
            f"suppressed finding at {f.path}:{f.line} has no nearby "
            f"justification comment"
        )
