"""Rule family 7 (node-clock hygiene): no raw loop.now in protocol code."""

import dataclasses

from conftest import lint, rule_hits

from tools.repolint import DEFAULT_CONFIG
from tools.repolint.rules.clock import NodeClockRule

RULES = [NodeClockRule(DEFAULT_CONFIG)]


def test_adapter_reads_pass(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/node.py": """\
            class RaftNode:
                def __init__(self, loop, clock) -> None:
                    self.clock = clock
                    self._now = self.clock.now

                def _tick(self) -> None:
                    t = self._now()
                    frame = self.clock.sim_now()
                    d = self.clock.scale_duration(300.0)
            """
        },
        rules=RULES,
    )
    assert report.findings == []


def test_raw_loop_now_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/node.py": """\
            class RaftNode:
                def _tick(self) -> None:
                    t = self.loop.now
            """
        },
        rules=RULES,
    )
    (hit,) = rule_hits(report, "node-clock-hygiene")
    assert hit.symbol == "loop.now"
    assert "_tick" in hit.message


def test_aliased_and_private_loop_reads_are_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/dynatune/policy.py": """\
            class DynatunePolicy:
                def _measure(self) -> None:
                    t = self._loop.now

                def _aliased(self) -> None:
                    loop = self._loop
                    t = loop.now
            """
        },
        rules=RULES,
    )
    hits = rule_hits(report, "node-clock-hygiene")
    assert len(hits) == 2
    assert {h.symbol for h in hits} == {"loop.now", "_loop.now"}


def test_out_of_scope_modules_are_ignored(tmp_path):
    # The sim kernel, network and scenario layers legitimately live in
    # simulation-frame time; only the protocol layers are confined.
    report = lint(
        tmp_path,
        {
            "repro/sim/timers.py": "def now(loop):\n    return loop.now\n",
            "repro/net/network.py": "def stamp(loop):\n    return loop.now\n",
            "repro/scenarios/steps.py": "def at(loop):\n    return loop.now\n",
        },
        rules=RULES,
    )
    assert report.findings == []


def test_exempt_method_is_honored(tmp_path):
    config = dataclasses.replace(
        DEFAULT_CONFIG, clock_exempt=frozenset({"RaftNode._boot"})
    )
    report = lint(
        tmp_path,
        {
            "repro/raft/node.py": """\
            class RaftNode:
                def _boot(self) -> None:
                    t = self.loop.now
            """
        },
        rules=[NodeClockRule(config)],
        config=config,
    )
    assert report.findings == []


def test_unrelated_now_attributes_pass(tmp_path):
    # `.now` off a non-loop receiver (the clock itself, a stats object)
    # is not a violation — the rule keys on the loop receiver names.
    report = lint(
        tmp_path,
        {
            "repro/raft/client.py": """\
            class RaftClient:
                def _stamp(self) -> float:
                    return self.clock.now()
            """
        },
        rules=RULES,
    )
    assert report.findings == []
