"""Rule family 3 (trace-kind registry): emit/consume/registry agreement."""

from conftest import lint, rule_hits, write_tree

from tools.repolint import DEFAULT_CONFIG, run_repolint
from tools.repolint.engine import load_project
from tools.repolint.rules.tracekinds import (
    TraceRegistryRule,
    generate_trace_registry,
)

RULES = [TraceRegistryRule(DEFAULT_CONFIG)]


def registry_module(kinds: list[str]) -> str:
    body = "".join(f'    "{k}",\n' for k in kinds)
    return f"TRACE_KINDS = frozenset((\n{body}))\n"


def test_registered_emit_and_consume_pass(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/sim/trace_kinds.py": registry_module(
                ["become_leader"]
                + list(DEFAULT_CONFIG.extra_trace_kinds)
            ),
            "repro/raft/x.py": """\
            def win(trace, now: float) -> None:
                trace.record(now, "n1", "become_leader", term=2)

            def query(trace):
                return trace.of_kind("become_leader")
            """,
        },
        rules=RULES,
    )
    assert report.findings == []


def test_unregistered_emit_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/sim/trace_kinds.py": registry_module(
                list(DEFAULT_CONFIG.extra_trace_kinds)
            ),
            "repro/raft/x.py": """\
            def win(trace, now: float) -> None:
                trace.record(now, "n1", "become_leader", term=2)
            """,
        },
        rules=RULES,
    )
    (hit,) = rule_hits(report, "trace-unregistered-emit")
    assert hit.symbol == "become_leader"
    assert hit.path == "repro/raft/x.py"


def test_stale_registry_entry_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/sim/trace_kinds.py": registry_module(
                ["ghost_kind"] + list(DEFAULT_CONFIG.extra_trace_kinds)
            ),
            "repro/raft/x.py": """\
            def noop() -> None:
                pass
            """,
        },
        rules=RULES,
    )
    (hit,) = rule_hits(report, "trace-stale-registry")
    assert hit.symbol == "ghost_kind"


def test_typod_consumer_kind_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/sim/trace_kinds.py": registry_module(
                ["become_leader"]
                + list(DEFAULT_CONFIG.extra_trace_kinds)
            ),
            "repro/raft/x.py": """\
            def win(trace, now: float) -> None:
                trace.record(now, "n1", "become_leader", term=2)

            def query(trace):
                return trace.of_kind("becom_leader")
            """,
        },
        rules=RULES,
    )
    (hit,) = rule_hits(report, "trace-unknown-consume")
    assert hit.symbol == "becom_leader"


def test_keep_kinds_literal_collection_is_cross_checked(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/sim/trace_kinds.py": registry_module(
                ["become_leader"]
                + list(DEFAULT_CONFIG.extra_trace_kinds)
            ),
            "repro/raft/x.py": """\
            def win(trace, now: float) -> None:
                trace.record(now, "n1", "become_leader", term=2)

            def gate(trace) -> None:
                trace.keep_kinds({"becom_leader"})
            """,
        },
        rules=RULES,
    )
    (hit,) = rule_hits(report, "trace-unknown-consume")
    assert hit.symbol == "becom_leader"


def test_kind_via_module_constant_is_resolved(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/sim/trace_kinds.py": registry_module(
                ["leader_gone"] + list(DEFAULT_CONFIG.extra_trace_kinds)
            ),
            "repro/raft/x.py": """\
            FAIL_KIND = "leader_gone"

            def fail(trace, now: float) -> None:
                trace.record(now, "n1", FAIL_KIND)
            """,
        },
        rules=RULES,
    )
    assert report.findings == []


def test_dynamic_kind_is_flagged_and_suppressible(tmp_path):
    files = {
        "repro/sim/trace_kinds.py": registry_module(
            list(DEFAULT_CONFIG.extra_trace_kinds)
        ),
        "repro/raft/x.py": """\
        def emit(trace, now: float, kind: str) -> None:
            trace.record(now, "n1", kind)
        """,
    }
    report = lint(tmp_path / "a", files, rules=RULES)
    (hit,) = rule_hits(report, "trace-dynamic-kind")
    assert hit.path == "repro/raft/x.py"

    files["repro/raft/x.py"] = """\
    def emit(trace, now: float, kind: str) -> None:
        trace.record(now, "n1", kind)  # repolint: disable=trace-dynamic-kind
    """
    report = lint(tmp_path / "b", files, rules=RULES)
    assert report.findings == []
    assert len(report.suppressed) == 1


def test_generated_registry_round_trips(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/raft/x.py": """\
            def win(trace, now: float) -> None:
                trace.record(now, "n1", "become_leader", term=2)
                trace.record(now, "n1", "step_down")
            """,
        },
    )
    project, errors = load_project(tmp_path, DEFAULT_CONFIG)
    assert errors == []
    source = generate_trace_registry(project, DEFAULT_CONFIG)
    (tmp_path / "repro/sim").mkdir(parents=True, exist_ok=True)
    (tmp_path / DEFAULT_CONFIG.trace_registry_modpath).write_text(source)
    report = run_repolint(tmp_path, rules=[TraceRegistryRule(DEFAULT_CONFIG)])
    assert report.findings == []
