"""Acceptance: planted violations in a copy of the real tree are caught.

This is the end-to-end proof that the linter bites on the actual
codebase shape (real imports, real registry, real dispatch table) — not
just on minimal fixtures.  One copy of ``src/`` gets all four plants
from the issue checklist; each must surface as its own finding.
"""

import shutil

import pytest

from conftest import REPO_ROOT

from tools.repolint import run_repolint

PLANTS = {
    # 1. wall-clock call inside the simulation kernel
    "repro/sim/loop.py": """

import time


def _leaked_wall_clock() -> float:
    return time.time()
""",
    # 2. slotless message class + 4. message class without a _DISPATCH
    #    handler (distinct classes so each maps to exactly one rule)
    "repro/raft/messages.py": """

class RogueProbe:
    def __init__(self, term: int) -> None:
        self.term = term


class RogueCommand:
    __slots__ = ("term",)

    def __init__(self, term: int) -> None:
        self.term = term
""",
    # 3. typo'd trace kind in a consumer
    "repro/cluster/measurements.py": """

def _planted_probe(trace):
    return trace.of_kind("becom_leader")
""",
}


@pytest.fixture(scope="module")
def planted_report(tmp_path_factory):
    root = tmp_path_factory.mktemp("planted")
    shutil.copytree(REPO_ROOT / "src" / "repro", root / "repro")
    for modpath, plant in PLANTS.items():
        path = root / modpath
        path.write_text(path.read_text() + plant, encoding="utf-8")
    return run_repolint(root)


def test_planted_wall_clock_is_caught(planted_report):
    assert any(
        f.rule == "determinism-forbidden-call"
        and f.symbol == "time.time"
        and f.path == "repro/sim/loop.py"
        for f in planted_report.findings
    )


def test_planted_slotless_message_class_is_caught(planted_report):
    assert any(
        f.rule == "hotpath-slots" and f.symbol == "RogueProbe"
        for f in planted_report.findings
    )


def test_planted_typod_trace_kind_is_caught(planted_report):
    assert any(
        f.rule == "trace-unknown-consume" and f.symbol == "becom_leader"
        for f in planted_report.findings
    )


def test_planted_unhandled_message_is_caught(planted_report):
    assert any(
        f.rule == "dispatch-unhandled-message" and f.symbol == "RogueCommand"
        for f in planted_report.findings
    )


def test_plants_are_the_only_findings(planted_report):
    # The copied tree is the shipped tree: nothing beyond the four plants
    # (RogueProbe legitimately trips dispatch too — it has no handler).
    expected = {
        ("determinism-forbidden-call", "time.time"),
        ("hotpath-slots", "RogueProbe"),
        ("trace-unknown-consume", "becom_leader"),
        ("dispatch-unhandled-message", "RogueCommand"),
        ("dispatch-unhandled-message", "RogueProbe"),
    }
    assert {(f.rule, f.symbol) for f in planted_report.findings} == expected
