"""Rule family 4 (dispatch completeness): messages and scenario steps."""

from conftest import lint, rule_hits

from tools.repolint import DEFAULT_CONFIG
from tools.repolint.rules.dispatch import MessageDispatchRule, StepRegistryRule

MSG = [MessageDispatchRule(DEFAULT_CONFIG)]
STEP = [StepRegistryRule(DEFAULT_CONFIG)]

MESSAGES = """\
class Heartbeat:
    __slots__ = ("term",)

class VoteRequest:
    __slots__ = ("term",)

class ClientResponse:
    __slots__ = ("ok",)
"""


def node_with(*names: str) -> str:
    entries = "".join(f"    {n}: RaftNode._on_{n.lower()},\n" for n in names)
    return (
        "class RaftNode:\n"
        "    def _on_heartbeat(self, m): ...\n"
        "    def _on_voterequest(self, m): ...\n"
        "\n"
        f"RaftNode._DISPATCH = {{\n{entries}}}\n"
    )


def test_complete_dispatch_table_passes(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/messages.py": MESSAGES,
            "repro/raft/node.py": node_with("Heartbeat", "VoteRequest"),
        },
        rules=MSG,
    )
    # ClientResponse is exempt (client-bound), so this is complete.
    assert report.findings == []


def test_unhandled_message_class_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/messages.py": MESSAGES,
            "repro/raft/node.py": node_with("Heartbeat"),
        },
        rules=MSG,
    )
    (hit,) = rule_hits(report, "dispatch-unhandled-message")
    assert hit.symbol == "VoteRequest"
    assert hit.path == "repro/raft/messages.py"


def test_stale_dispatch_key_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/messages.py": MESSAGES,
            "repro/raft/node.py": node_with(
                "Heartbeat", "VoteRequest", "RenamedAway"
            ),
        },
        rules=MSG,
    )
    (hit,) = rule_hits(report, "dispatch-unknown-message")
    assert hit.symbol == "RenamedAway"
    assert hit.path == "repro/raft/node.py"


def test_missing_dispatch_table_is_itself_a_finding(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/messages.py": MESSAGES,
            "repro/raft/node.py": "class RaftNode:\n    pass\n",
        },
        rules=MSG,
    )
    (hit,) = rule_hits(report, "dispatch-unhandled-message")
    assert "_DISPATCH" in hit.message


STEPS = """\
class Step:
    pass

class _TimedStep(Step):
    pass

class KillLeader(_TimedStep):
    pass

class Partition(Step):
    pass

STEP_TYPES = {
    "kill_leader": KillLeader,
    "partition": Partition,
}
"""


def test_registered_steps_pass(tmp_path):
    report = lint(
        tmp_path, {"repro/scenarios/steps.py": STEPS}, rules=STEP
    )
    assert report.findings == []


def test_unregistered_step_subclass_is_flagged(tmp_path):
    source = STEPS.replace('    "partition": Partition,\n', "")
    report = lint(
        tmp_path, {"repro/scenarios/steps.py": source}, rules=STEP
    )
    (hit,) = rule_hits(report, "step-unregistered")
    assert hit.symbol == "Partition"


def test_private_step_base_is_exempt(tmp_path):
    # _TimedStep is transitively a Step subclass but underscore-private:
    # it must not be required in the registry (the STEPS fixture passing
    # in test_registered_steps_pass already relies on this; here the
    # registry is rebuilt without it explicitly).
    report = lint(
        tmp_path, {"repro/scenarios/steps.py": STEPS}, rules=STEP
    )
    assert rule_hits(report, "step-unregistered") == []


def test_registry_entry_for_non_step_is_flagged(tmp_path):
    source = STEPS + "\nclass FreeRider:\n    pass\n"
    source = source.replace(
        '    "partition": Partition,\n',
        '    "partition": Partition,\n    "free": FreeRider,\n',
    )
    report = lint(
        tmp_path, {"repro/scenarios/steps.py": source}, rules=STEP
    )
    (hit,) = rule_hits(report, "step-unknown-registered")
    assert hit.symbol == "FreeRider"


def test_dict_comprehension_registry_is_parsed(tmp_path):
    source = STEPS.replace(
        'STEP_TYPES = {\n    "kill_leader": KillLeader,\n'
        '    "partition": Partition,\n}\n',
        "STEP_TYPES = {c.__name__: c for c in (KillLeader, Partition)}\n",
    )
    report = lint(
        tmp_path, {"repro/scenarios/steps.py": source}, rules=STEP
    )
    assert report.findings == []
