"""Rule family 5 (protocol-state hygiene): designated mutators only."""

from conftest import lint, rule_hits

from tools.repolint import DEFAULT_CONFIG
from tools.repolint.rules.state import ProtectedStateRule

RULES = [ProtectedStateRule(DEFAULT_CONFIG)]


def test_write_inside_designated_mutator_passes(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/node.py": """\
            class RaftNode:
                def __init__(self) -> None:
                    self.current_term = 0
                    self.voted_for = None

                def _become_follower(self, term: int) -> None:
                    self.current_term = term
                    self.voted_for = None
            """
        },
        rules=RULES,
    )
    assert report.findings == []


def test_write_outside_mutators_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/node.py": """\
            class RaftNode:
                def _on_heartbeat(self, m) -> None:
                    self.current_term = m.term
            """
        },
        rules=RULES,
    )
    (hit,) = rule_hits(report, "state-protected-write")
    assert hit.symbol == "current_term"
    assert "_on_heartbeat" in hit.message


def test_augmented_write_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/fuzz/inject.py": """\
            def corrupt(node) -> None:
                node.current_term += 1000
            """
        },
        rules=RULES,
    )
    (hit,) = rule_hits(report, "state-protected-write")
    assert hit.symbol == "current_term"


def test_subscript_write_through_attribute_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/fuzz/inject.py": """\
            def corrupt(node, entry) -> None:
                node._config_log[-1] = entry
            """
        },
        rules=RULES,
    )
    (hit,) = rule_hits(report, "state-protected-write")
    assert hit.symbol == "_config_log"


def test_cross_module_write_is_flagged(tmp_path):
    # The rule is not confined to node.py: any module reaching into a
    # node's protected state is flagged.
    report = lint(
        tmp_path,
        {
            "repro/cluster/ops.py": """\
            def hammer(node) -> None:
                node.voted_for = "n1"
            """
        },
        rules=RULES,
    )
    (hit,) = rule_hits(report, "state-protected-write")
    assert hit.symbol == "voted_for"


def test_unprotected_attribute_is_not_flagged(tmp_path):
    # Near miss: similarly named but unlisted attributes stay free.
    report = lint(
        tmp_path,
        {
            "repro/raft/node.py": """\
            class RaftNode:
                def _on_heartbeat(self, m) -> None:
                    self.current_leader = m.leader
                    self.commit_index = m.leader_commit
            """
        },
        rules=RULES,
    )
    assert report.findings == []


def test_suppression_comment_permits_deliberate_corruption(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/fuzz/inject.py": """\
            def corrupt(node) -> None:
                node.current_term += 1000  # repolint: disable=state-protected-write
            """
        },
        rules=RULES,
    )
    assert report.findings == []
    assert len(report.suppressed) == 1
