"""Engine behavior: suppressions, baseline, CLI exit codes, JSON output."""

import json
import subprocess
import sys

from conftest import REPO_ROOT, lint, write_tree

from tools.repolint import Baseline, DEFAULT_CONFIG, run_repolint
from tools.repolint.rules.determinism import ForbiddenNondeterminismRule

RULES = [ForbiddenNondeterminismRule(DEFAULT_CONFIG)]

VIOLATION = """\
import time

def stamp() -> float:
    return time.time()
"""


def test_same_line_suppression(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/sim/x.py": """\
            import time

            def stamp() -> float:
                return time.time()  # repolint: disable=determinism-forbidden-call
            """
        },
        rules=RULES,
    )
    assert report.findings == []
    assert len(report.suppressed) == 1


def test_comment_line_above_suppression(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/sim/x.py": """\
            import time

            def stamp() -> float:
                # repolint: disable=determinism-forbidden-call
                return time.time()
            """
        },
        rules=RULES,
    )
    assert report.findings == []
    assert len(report.suppressed) == 1


def test_suppression_for_other_rule_does_not_apply(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/sim/x.py": """\
            import time

            def stamp() -> float:
                return time.time()  # repolint: disable=hotpath-alloc
            """
        },
        rules=RULES,
    )
    assert len(report.findings) == 1


def test_code_line_above_does_not_suppress(tmp_path):
    # A trailing suppression on the *previous code line* must not leak
    # onto the next line: only bare comment lines count as "above".
    report = lint(
        tmp_path,
        {
            "repro/sim/x.py": """\
            import time

            def stamp() -> float:
                a = 1  # repolint: disable=determinism-forbidden-call
                return time.time()
            """
        },
        rules=RULES,
    )
    assert len(report.findings) == 1


def test_baseline_covers_finding_across_line_drift(tmp_path):
    files = {"repro/sim/x.py": VIOLATION}
    report = lint(tmp_path / "a", files, rules=RULES)
    assert len(report.findings) == 1
    baseline = Baseline.from_findings(report.findings)

    # The same violation, pushed down by an unrelated edit above it.
    drifted = {"repro/sim/x.py": "import time\n\nPAD = 1\nPAD2 = 2\n" + VIOLATION[12:]}
    report2 = lint(tmp_path / "b", drifted, rules=RULES, baseline=baseline)
    assert report2.findings == []
    assert len(report2.baselined) == 1
    assert report2.ok


def test_baseline_round_trips_through_json(tmp_path):
    report = lint(tmp_path / "a", {"repro/sim/x.py": VIOLATION}, rules=RULES)
    baseline = Baseline.from_findings(report.findings)
    path = tmp_path / "baseline.json"
    baseline.dump(path)
    reloaded = Baseline.load(path)
    assert all(reloaded.covers(f) for f in report.findings)


def test_report_json_is_parseable(tmp_path):
    report = lint(tmp_path, {"repro/sim/x.py": VIOLATION}, rules=RULES)
    data = json.loads(report.to_json())
    assert data["ok"] is False
    assert data["findings"][0]["rule"] == "determinism-forbidden-call"


def test_syntax_error_is_reported_not_fatal(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/sim/bad.py": "def broken(:\n",
            "repro/sim/good.py": VIOLATION,
        },
        rules=RULES,
    )
    assert len(report.parse_errors) == 1
    assert len(report.findings) == 1  # the good file is still checked
    assert not report.ok


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "tools.repolint", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_cli_exit_zero_on_clean_tree(tmp_path):
    write_tree(tmp_path, {"repro/sim/x.py": "X = 1\n"})
    proc = _run_cli(str(tmp_path), "--no-baseline")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_exit_one_on_findings_and_json_output(tmp_path):
    write_tree(tmp_path, {"repro/sim/x.py": VIOLATION})
    proc = _run_cli(str(tmp_path), "--no-baseline", "--json")
    assert proc.returncode == 1
    data = json.loads(proc.stdout)
    assert data["ok"] is False
    assert any(
        f["rule"] == "determinism-forbidden-call" for f in data["findings"]
    )


def test_run_repolint_accepts_default_rule_set(tmp_path):
    # Full default rule set over a minimal tree must not crash and must
    # come back clean (no registry / dispatch modules => families 3-4
    # skip their cross-checks by design).
    write_tree(tmp_path, {"repro/sim/x.py": "X = 1\n"})
    report = run_repolint(tmp_path)
    assert report.ok
