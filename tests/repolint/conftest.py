"""Fixture-corpus helpers for the repolint rule tests.

Each test writes a tiny source tree (files keyed by modpath, mirroring
the real ``repro/...`` layout) into ``tmp_path`` and lints it.  Rule
tests pass an explicit rule list so a determinism fixture never trips
over, say, the trace-registry cross-check; engine and planted-violation
tests run the full default rule set.
"""

from __future__ import annotations

import pathlib
import sys
import textwrap

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.repolint import (  # noqa: E402  (path pin above)
    Baseline,
    DEFAULT_CONFIG,
    run_repolint,
)


def write_tree(root: pathlib.Path, files: dict[str, str]) -> pathlib.Path:
    """Materialise ``{modpath: source}`` under ``root`` (dedented)."""
    for modpath, source in files.items():
        path = root / modpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def lint(
    root: pathlib.Path,
    files: dict[str, str],
    *,
    rules=None,
    config=DEFAULT_CONFIG,
    baseline: Baseline | None = None,
):
    """Write the fixture tree and run repolint over it."""
    write_tree(root, files)
    return run_repolint(root, config=config, rules=rules, baseline=baseline)


def rule_hits(report, rule: str) -> list:
    return [f for f in report.findings if f.rule == rule]
