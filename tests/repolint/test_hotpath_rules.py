"""Rule family 2 (hot-path discipline): slots and per-call allocations."""

import dataclasses

from conftest import lint, rule_hits

from tools.repolint import DEFAULT_CONFIG
from tools.repolint.rules.hotpath import HotPathAllocRule, SlotsRule

SLOTS = [SlotsRule(DEFAULT_CONFIG)]

# A config whose hot list points at the fixture module.
HOT_CONFIG = dataclasses.replace(
    DEFAULT_CONFIG,
    hot_functions={"repro/raft/x.py": frozenset({"Node.deliver"})},
)
HOT = [HotPathAllocRule(HOT_CONFIG)]


# -- hotpath-slots --------------------------------------------------------- #


def test_slotless_class_in_messages_module_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/messages.py": """\
            class Probe:
                def __init__(self, term: int) -> None:
                    self.term = term
            """
        },
        rules=SLOTS,
    )
    (hit,) = rule_hits(report, "hotpath-slots")
    assert hit.symbol == "Probe"


def test_explicit_slots_and_dataclass_slots_pass(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/messages.py": """\
            import dataclasses

            class Probe:
                __slots__ = ("term",)

                def __init__(self, term: int) -> None:
                    self.term = term

            @dataclasses.dataclass(slots=True, frozen=True)
            class Reply:
                term: int
            """
        },
        rules=SLOTS,
    )
    assert report.findings == []


def test_exception_class_in_messages_module_is_exempt(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/messages.py": """\
            class CodecError(ValueError):
                pass
            """
        },
        rules=SLOTS,
    )
    assert report.findings == []


def test_named_envelope_class_is_checked_everywhere(tmp_path):
    # _Delivery lives in the net module (not a slots_module) but is on
    # the envelope name list, so it is checked wherever it appears.
    report = lint(
        tmp_path,
        {
            "repro/net/transport.py": """\
            class _Delivery:
                def __init__(self, payload) -> None:
                    self.payload = payload

            class FreeHelper:
                def __init__(self) -> None:
                    self.x = 1
            """
        },
        rules=SLOTS,
    )
    (hit,) = rule_hits(report, "hotpath-slots")
    assert hit.symbol == "_Delivery"  # FreeHelper is not on any list


# -- hotpath-alloc --------------------------------------------------------- #


def test_comprehension_in_hot_function_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/x.py": """\
            class Node:
                def deliver(self, msgs) -> list:
                    return [m for m in msgs]
            """
        },
        rules=HOT,
    )
    (hit,) = rule_hits(report, "hotpath-alloc")
    assert "list comprehension" in hit.message


def test_fstring_in_raise_is_exempt(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/x.py": """\
            class Node:
                def deliver(self, msg) -> None:
                    if msg is None:
                        raise ValueError(f"bad message {msg!r}")
                    self.last = msg
            """
        },
        rules=HOT,
    )
    assert report.findings == []


def test_fstring_outside_raise_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/x.py": """\
            class Node:
                def deliver(self, msg) -> str:
                    return f"got {msg}"
            """
        },
        rules=HOT,
    )
    (hit,) = rule_hits(report, "hotpath-alloc")
    assert "f-string" in hit.message


def test_allocations_in_cold_functions_are_not_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/x.py": """\
            class Node:
                def deliver(self, msg) -> None:
                    self.last = msg

                def summary(self) -> str:
                    return f"{[m for m in self.seen]}"
            """
        },
        rules=HOT,
    )
    assert report.findings == []


def test_missing_configured_hot_function_is_flagged(tmp_path):
    report = lint(
        tmp_path,
        {
            "repro/raft/x.py": """\
            class Node:
                def deliver_v2(self, msg) -> None:
                    self.last = msg
            """
        },
        rules=HOT,
    )
    (hit,) = rule_hits(report, "hotpath-alloc")
    assert hit.symbol == "Node.deliver"
    assert "not found" in hit.message
