"""SafetyChecker: the partition safety properties, positive and negative."""

import pytest

from repro.scenarios.safety import SafetyChecker
from repro.scenarios.scenario import Scenario
from repro.scenarios.steps import Heal, Partition
from repro.raft.state_machine import kv_put
from tests.conftest import make_raft_cluster


def test_clean_run_has_no_violations():
    c = make_raft_cluster(3)
    checker = SafetyChecker(c, interval_ms=200.0)
    checker.install()
    c.run_until_leader()
    c.run_for(3_000.0)
    assert checker.verify() == []


def test_split_heal_cycle_with_writes_stays_safe():
    c = make_raft_cluster(5, seed=9)
    checker = SafetyChecker(c, interval_ms=200.0)
    checker.install()
    client = c.add_client("cl", retry_timeout_ms=400.0)
    client.max_retries = 100
    Scenario(
        "splits",
        [
            Partition(at_ms=2_000.0, groups=(("n1", "n2", "n3"),)),
            Heal(at_ms=6_000.0),
            Partition(at_ms=8_000.0, groups=(("@leader",),)),
            Heal(at_ms=12_000.0),
        ],
    ).install(c)
    for i in range(8):
        c.loop.schedule_at(500.0 + i * 1_800.0, lambda i=i: client.submit(kv_put(f"k{i}", i)))
    c.run_until(18_000.0)
    checker.assert_safe()
    # the run must have actually committed something for the check to bite
    assert max(n.commit_index for n in c.nodes.values()) > 0


def test_interval_validation():
    c = make_raft_cluster(3)
    with pytest.raises(ValueError):
        SafetyChecker(c, interval_ms=0.0)


def test_detects_manufactured_commit_regression():
    c = make_raft_cluster(3)
    checker = SafetyChecker(c, interval_ms=200.0)
    c.run_until_leader()
    c.run_for(1_000.0)
    checker.sample()
    node = next(n for n in c.nodes.values() if n.commit_index > 0)
    node.commit_index = 0  # corrupt volatile state without a crash
    checker.sample()
    assert any("moved backwards" in v for v in checker.violations)


def test_detects_manufactured_committed_entry_loss():
    c = make_raft_cluster(3)
    checker = SafetyChecker(c, interval_ms=200.0)
    c.run_until_leader()
    c.run_for(1_000.0)
    checker.sample()
    node = next(n for n in c.nodes.values() if n.commit_index > 0)
    # Rewrite the committed entry's term behind Raft's back.
    entry = node.log.entry_at(node.commit_index)
    node.log._entries[node.commit_index - 1] = type(entry)(
        index=entry.index, term=entry.term + 99, command=entry.command
    )
    problems = checker.verify()
    assert any("committed entry lost" in v for v in problems)
    with pytest.raises(AssertionError):
        checker.assert_safe()


def test_crash_reset_is_not_a_regression():
    c = make_raft_cluster(3)
    checker = SafetyChecker(c, interval_ms=200.0)
    checker.install()
    c.run_until_leader()
    c.run_for(1_000.0)
    victim = c.node("n2")
    victim.crash()
    c.run_for(500.0)
    victim.recover()  # commit index legitimately restarts at 0
    c.run_for(3_000.0)
    assert not any("moved backwards" in v for v in checker.verify())


def test_entries_committed_between_samples_are_protected():
    """Commit can advance several indices between sampler ticks; every
    index passed over must still be recorded and checked."""
    c = make_raft_cluster(3)
    checker = SafetyChecker(c, interval_ms=200.0)
    c.run_until_leader()
    checker.sample()
    client = c.add_client("cl", retry_timeout_ms=400.0)
    for i in range(5):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(3_000.0)
    checker.sample()  # commit jumped over several indices since last sample
    node = next(n for n in c.nodes.values() if n.commit_index >= 3)
    mid = node.commit_index - 1  # an index strictly between two samples
    entry = node.log.entry_at(mid)
    node.log._entries[mid - 1] = type(entry)(
        index=entry.index, term=entry.term + 7, command=entry.command
    )
    assert any(f"at index {mid}" in v for v in checker.verify())


def _flip_into_leader(node, term):
    """Simulate a silent role bug: leader role adopted with no trace record."""
    from repro.raft.types import Role

    node.role = Role.LEADER
    node.current_term = term


def test_sampled_only_checker_misses_sub_interval_double_leader():
    """The satellite fix's negative half: a same-term double-leader window
    that opens and closes between two 250 ms samples, with no
    ``become_leader`` record (the bug is silent), leaves the sampled-only
    checker blind."""
    from repro.raft.types import Role

    c = make_raft_cluster(5, seed=7)
    checker = SafetyChecker(c, interval_ms=250.0)
    checker.install()  # sampling only
    leader_name = c.run_until_leader()
    # Park the clock just past a sampler tick so the window fits before
    # the next one.
    next_tick = (c.loop.now // 250.0 + 1.0) * 250.0
    c.run_until(next_tick + 10.0)
    leader = c.node(leader_name)
    rogue = next(n for n in c.nodes.values() if n.name != leader_name)
    _flip_into_leader(rogue, leader.current_term)
    # The window closes before any message or sampler tick can observe it
    # (a real silent-flip bug would be just as invisible to both).
    rogue.role = Role.FOLLOWER
    c.run_for(2_000.0)
    assert checker.verify() == []  # blind spot, by construction


def test_event_hooked_checker_catches_sub_interval_double_leader():
    """The fix: with ``event_hooks=True`` any traced term/role/fault event
    inside the window triggers an instantaneous leader-overlap check."""
    from repro.cluster.faults import pause_for
    from repro.raft.types import Role

    c = make_raft_cluster(5, seed=7)
    checker = SafetyChecker(c, interval_ms=250.0)
    checker.install(event_hooks=True)
    leader_name = c.run_until_leader()
    next_tick = (c.loop.now // 250.0 + 1.0) * 250.0
    c.run_until(next_tick + 10.0)
    leader = c.node(leader_name)
    rogue = next(n for n in c.nodes.values() if n.name != leader_name)
    _flip_into_leader(rogue, leader.current_term)
    # Any traced cluster event inside the window rings the bell — here a
    # brief unrelated pause on a third node.
    third = next(
        n for n in c.nodes.values() if n.name not in (leader_name, rogue.name)
    )
    pause_for(c.loop, third, 20.0)
    rogue.role = Role.FOLLOWER
    c.run_for(2_000.0)
    assert any("live leaders" in v for v in checker.violations)
    assert any("live leaders" in v for v in checker.verify())


def test_event_hooks_are_quiet_on_healthy_runs():
    c = make_raft_cluster(5, seed=13)
    checker = SafetyChecker(c, interval_ms=250.0)
    checker.install(event_hooks=True)
    c.run_until_leader()
    victim = c.node("n3")
    victim.crash()
    c.run_for(800.0)
    victim.recover()
    c.run_for(3_000.0)
    assert checker.verify() == []


def test_overlap_violation_reported_once_per_window():
    from repro.cluster.faults import pause_for
    from repro.raft.types import Role

    c = make_raft_cluster(5, seed=7)
    checker = SafetyChecker(c, interval_ms=250.0)
    checker.install(event_hooks=True)
    leader_name = c.run_until_leader()
    c.run_for(100.0)
    leader = c.node(leader_name)
    rogue = next(n for n in c.nodes.values() if n.name != leader_name)
    _flip_into_leader(rogue, leader.current_term)
    others = [
        n for n in c.nodes.values() if n.name not in (leader_name, rogue.name)
    ]
    pause_for(c.loop, others[0], 20.0)  # first hooked event in the window
    pause_for(c.loop, others[1], 20.0)  # second one: same overlap, no re-report
    rogue.role = Role.FOLLOWER
    overlaps = [v for v in checker.violations if "live leaders" in v]
    assert len(overlaps) == 1


# --------------------------------------------------------------------- #
# compaction awareness
# --------------------------------------------------------------------- #


def _compaction_cluster(**kwargs):
    from repro.raft.types import RaftConfig

    return make_raft_cluster(
        3,
        raft=RaftConfig(compaction_threshold=15, compaction_retain_margin=3),
        **kwargs,
    )


def test_compacted_prefix_counts_as_retained():
    """Entries released by compaction are covered by the snapshot frontier
    and must not be reported as lost."""
    c = _compaction_cluster()
    checker = SafetyChecker(c, interval_ms=200.0)
    checker.install()
    c.run_until_leader()
    client = c.add_client("cl")
    for i in range(60):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(8_000.0)
    # The run must actually have compacted for this test to mean anything.
    assert any(n.log.last_included_index > 0 for n in c.nodes.values())
    assert checker.verify() == []


def test_frontier_contradicting_committed_pair_is_violation():
    c = _compaction_cluster()
    checker = SafetyChecker(c, interval_ms=200.0)
    checker.install()
    c.run_until_leader()
    client = c.add_client("cl")
    for i in range(60):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(8_000.0)
    node = next(n for n in c.nodes.values() if n.log.last_included_index > 0)
    # Corrupt the snapshot frontier's term behind Raft's back: the checker
    # knows what term was committed at that index and must object.
    node.log.last_included_term += 77
    problems = checker.verify()
    assert any("snapshot frontier contradicts" in v for v in problems)


def test_sampling_survives_a_node_compacting_between_samples():
    """Commit can advance far past the previous sample and then compact
    below it; the sampler must skip unreadable indices without blowing up
    and still record everything from the frontier upward."""
    c = _compaction_cluster()
    checker = SafetyChecker(c, interval_ms=200.0)
    c.run_until_leader()
    checker.sample()  # everyone near commit 1
    client = c.add_client("cl")
    for i in range(60):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(8_000.0)  # commit raced ahead and the prefix compacted
    checker.sample()
    assert checker.violations == []
    assert len(checker._committed) > 10  # frontier-and-above still recorded


# --------------------------------------------------------------------- #
# membership invariants
# --------------------------------------------------------------------- #


def _record_config_commit(c, node, index, *, voters, prev_voters, learners=()):
    c.trace.record(
        c.loop.now,
        node,
        "config_commit",
        index=index,
        change="remove",
        target="nX",
        term=1,
        voters=tuple(voters),
        learners=tuple(learners),
        prev_voters=tuple(prev_voters),
    )


def test_clean_one_at_a_time_change_has_no_membership_violations():
    c = make_raft_cluster(3)
    checker = SafetyChecker(c, interval_ms=200.0)
    c.run_until_leader()
    for name in c.names:
        _record_config_commit(
            c, name, 5, voters=("n1", "n2"), prev_voters=("n1", "n2", "n3")
        )
    assert [p for p in checker.verify() if "config" in p] == []


def test_detects_config_divergence_at_one_index():
    c = make_raft_cluster(3)
    checker = SafetyChecker(c, interval_ms=200.0)
    c.run_until_leader()
    _record_config_commit(
        c, "n1", 5, voters=("n1", "n2"), prev_voters=("n1", "n2", "n3")
    )
    _record_config_commit(
        c, "n2", 5, voters=("n1", "n2", "n3"), prev_voters=("n1", "n2", "n3")
    )
    assert any("config divergence" in p for p in checker.verify())


def test_detects_two_at_a_time_change_and_quorum_overlap_break():
    c = make_raft_cluster(5)
    checker = SafetyChecker(c, interval_ms=200.0)
    c.run_until_leader()
    _record_config_commit(
        c,
        "n1",
        5,
        voters=("n1", "n2", "n3"),
        prev_voters=("n1", "n2", "n3", "n4", "n5"),
    )
    problems = checker.verify()
    assert any("moved more than one voter" in p for p in problems)
    assert any("breaks quorum overlap" in p for p in problems)


def test_detects_orphaned_committed_entry():
    c = make_raft_cluster(3)
    checker = SafetyChecker(c, interval_ms=200.0)
    c.run_until_leader()
    c.run_for(1_000.0)
    # Claim an entry was committed at an index no final voter holds — as
    # if the only replicas that acked it were since removed.
    checker._committed[999] = 7
    _record_config_commit(
        c, "n1", 5, voters=("n1", "n2", "n3"), prev_voters=("n1", "n2", "n3")
    )
    assert any("orphaned committed entry" in p for p in checker.verify())


# -- crash-recovery durability (fallible storage) -------------------------- #


def disk_checker_cluster(n=3):
    c = make_raft_cluster(n, storage="simdisk")
    checker = SafetyChecker(c, interval_ms=200.0)
    checker.install(event_hooks=True)
    return c, checker


def test_clean_crash_recovery_cycle_is_durably_safe():
    c, checker = disk_checker_cluster()
    client = c.add_client("cl")
    c.run_until_leader()
    for i in range(10):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(3_000.0)
    victim = c.node("n2")
    victim.crash()
    c.run_for(500.0)
    victim.recover()
    c.run_for(3_000.0)
    assert checker.verify() == []
    assert c.trace.of_kind("disk_recover")  # the invariant actually ran


def test_detects_synced_committed_entry_lost_across_recovery():
    """A storage backend that silently drops a synced, committed entry at
    recovery must trip the durability invariant — this is the bug class
    (lost WAL suffix passed off as clean recovery) ordinary safety
    sampling cannot see, because the recovered node's commit index
    legitimately restarts at 0."""
    c, checker = disk_checker_cluster()
    client = c.add_client("cl")
    c.run_until_leader()
    for i in range(10):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(3_000.0)
    victim = c.node("n2")
    assert victim.commit_index > 0
    victim.crash()
    # Manufactured storage bug: the last synced record — committed, since
    # the cluster settled — vanishes between crash and recovery.
    victim.storage._entries.pop()
    victim.recover()
    assert any("lost synced committed entry" in v for v in checker.violations)


def test_detects_term_regression_across_recovery():
    c, checker = disk_checker_cluster()
    c.run_until_leader()
    c.run_for(1_000.0)
    victim = c.node("n2")
    assert victim.current_term >= 1
    victim.crash()
    victim.storage._hard = None  # synced hard state silently evaporates
    victim.recover()
    assert any("below its synced term" in v for v in checker.violations)
