"""Scenario steps: validation, repeat expansion, dict/JSON round-trips."""

import pytest

from repro.scenarios.steps import (
    STEP_TYPES,
    Churn,
    Crash,
    DiskFault,
    Flap,
    Heal,
    Partition,
    Pause,
    Recover,
    Repeat,
    SetLoss,
    SetRtt,
    step_from_dict,
)


# -- validation ------------------------------------------------------------ #


def test_repeat_validation():
    with pytest.raises(ValueError):
        Repeat(every_ms=0.0, times=2)
    with pytest.raises(ValueError):
        Repeat(every_ms=100.0, times=0)


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        SetRtt(at_ms=-1.0, rtt_ms=50.0)


def test_set_rtt_validation():
    with pytest.raises(ValueError):
        SetRtt(at_ms=0.0, rtt_ms=-5.0)
    with pytest.raises(ValueError):
        SetRtt(at_ms=0.0, rtt_ms=50.0, pair=("a",))


def test_set_loss_validation():
    with pytest.raises(ValueError):
        SetLoss(at_ms=0.0, loss=1.5)


def test_partition_validation():
    with pytest.raises(ValueError):
        Partition(at_ms=0.0, groups=())
    with pytest.raises(ValueError):
        Partition(at_ms=0.0, groups=((),))
    with pytest.raises(ValueError):
        Partition(at_ms=0.0, groups=(("",),))


def test_pause_validation():
    with pytest.raises(ValueError):
        Pause(at_ms=0.0, node="n1", duration_ms=0.0)
    with pytest.raises(ValueError):
        Pause(at_ms=0.0, node="", duration_ms=10.0)


def test_flap_period_must_exceed_down():
    with pytest.raises(ValueError):
        Flap(at_ms=0.0, a="x", b="y", down_ms=500.0, repeat=Repeat(500.0, 3))


def test_churn_validation():
    with pytest.raises(ValueError):
        Churn(at_ms=0.0, nodes=(), down_ms=100.0)
    with pytest.raises(ValueError):
        Churn(at_ms=0.0, nodes=("a",), down_ms=100.0, fault="nuke")


# -- repeat expansion and extents ------------------------------------------ #


def test_disk_fault_validation():
    with pytest.raises(ValueError):
        DiskFault(at_ms=0.0, node="a", p_crash_point=1.5)
    with pytest.raises(ValueError):
        DiskFault(at_ms=0.0, node="a", p_bitflip=-0.1)
    with pytest.raises(ValueError):
        DiskFault(at_ms=0.0, node="a", duration_ms=-1.0)


def test_occurrence_times_without_repeat():
    assert SetRtt(at_ms=100.0, rtt_ms=50.0).occurrence_times() == [100.0]


def test_occurrence_times_with_repeat():
    step = Heal(at_ms=1000.0, repeat=Repeat(every_ms=500.0, times=3))
    assert step.occurrence_times() == [1000.0, 1500.0, 2000.0]


def test_extent_includes_effect_duration():
    pause = Pause(at_ms=1000.0, node="n1", duration_ms=700.0)
    assert pause.extent_ms == 1700.0
    flap = Flap(at_ms=0.0, a="x", b="y", down_ms=300.0, repeat=Repeat(1000.0, 2))
    assert flap.extent_ms == 1300.0
    churn = Churn(at_ms=500.0, nodes=("a", "b"), down_ms=400.0)
    assert churn.extent_ms == 900.0


# -- serialization --------------------------------------------------------- #

ALL_STEPS = [
    SetRtt(at_ms=10.0, rtt_ms=200.0),
    SetRtt(at_ms=10.0, rtt_ms=200.0, pair=("a", "b")),
    SetLoss(at_ms=20.0, loss=0.1, pair=("a", "c"), repeat=Repeat(50.0, 2)),
    Partition(at_ms=30.0, groups=(("a", "b"), ("c",))),
    Heal(at_ms=40.0),
    Pause(at_ms=50.0, node="@leader", duration_ms=300.0, trace_kind="fault_leader_pause"),
    Crash(at_ms=60.0, node="a"),
    Recover(at_ms=70.0, node="a"),
    Flap(at_ms=80.0, a="a", b="b", down_ms=100.0, repeat=Repeat(400.0, 5)),
    Churn(at_ms=90.0, nodes=("a", "b", "c"), down_ms=250.0, fault="pause"),
    DiskFault(
        at_ms=100.0,
        node="a",
        p_crash_point=0.2,
        p_torn_tail=0.5,
        duration_ms=4000.0,
    ),
]


@pytest.mark.parametrize("step", ALL_STEPS, ids=lambda s: s.kind)
def test_dict_round_trip(step):
    data = step.to_dict()
    clone = step_from_dict(data)
    assert clone == step
    assert clone.to_dict() == data


def test_round_trip_survives_json_lists():
    """JSON turns tuples into lists; from_dict must coerce them back."""
    import json

    step = Partition(at_ms=5.0, groups=(("a", "@leader"), ("b",)))
    clone = step_from_dict(json.loads(json.dumps(step.to_dict())))
    assert clone == step


def test_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown step kind"):
        step_from_dict({"kind": "meteor_strike", "at_ms": 0.0})


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown keys"):
        step_from_dict({"kind": "heal", "at_ms": 0.0, "vigor": 9})


def test_from_dict_requires_kind():
    with pytest.raises(ValueError, match="kind"):
        step_from_dict({"at_ms": 0.0})


def test_registry_covers_the_vocabulary():
    assert set(STEP_TYPES) == {
        "set_rtt",
        "set_loss",
        "partition",
        "heal",
        "pause",
        "crash",
        "recover",
        "flap",
        "block_link",
        "gray_link",
        "set_clock",
        "set_duplicate",
        "churn",
        "add_node",
        "remove_node",
        "replace_node",
        "disk_fault",
    }


def test_unknown_dynamic_selector_fails_at_construction():
    with pytest.raises(ValueError, match="unknown dynamic selector"):
        Pause(at_ms=0.0, node="@ledaer", duration_ms=100.0)
    with pytest.raises(ValueError, match="unknown dynamic selector"):
        Partition(at_ms=0.0, groups=(("@follower",),))
