"""LivenessChecker: flags stalls the cluster *could* avoid, and only those.

Every detector is gated on quorum connectivity, so the tests come in
pairs: a staged gray failure that must flag, and the corresponding
genuine outage (full partition, lost quorum) that must stay silent —
a cluster that cannot elect is allowed to idle.
"""

import pytest

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.dynatune.policy import StaticPolicy
from repro.raft.state_machine import kv_put
from repro.raft.types import RaftConfig
from repro.scenarios.liveness import LivenessChecker
from tests.conftest import make_raft_cluster


def _sleepy_cluster(n: int = 3, **config_kwargs):
    """A cluster whose nodes never time out — followers forever."""
    cluster = build_cluster(
        ClusterConfig(n_nodes=n, seed=5, rtt_ms=20.0, **config_kwargs),
        lambda name: StaticPolicy(
            election_timeout_ms=10_000_000.0, heartbeat_interval_ms=50.0
        ),
    )
    cluster.start()
    return cluster


def test_validation():
    c = make_raft_cluster(3)
    with pytest.raises(ValueError):
        LivenessChecker(c, interval_ms=0.0)
    with pytest.raises(ValueError):
        LivenessChecker(c, leaderless_bound_ms=-1.0)
    with pytest.raises(ValueError):
        LivenessChecker(c, leaderless_total_bound_ms=0.0)
    with pytest.raises(ValueError):
        LivenessChecker(c, term_churn_bound=0)
    with pytest.raises(ValueError):
        LivenessChecker(c, commit_stall_bound_ms=0.0)


def test_healthy_cluster_is_clean():
    c = make_raft_cluster(3)
    checker = LivenessChecker(
        c,
        interval_ms=100.0,
        leaderless_bound_ms=2_000.0,
        leaderless_total_bound_ms=4_000.0,
        commit_stall_bound_ms=2_000.0,
    )
    checker.install()
    client = c.add_client("cl")
    c.run_until_leader()
    for i in range(5):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(8_000.0)
    checker.assert_live()


def test_quorum_connected_semantics():
    c = make_raft_cluster(3)
    checker = LivenessChecker(c)
    assert checker.quorum_connected()
    # One node fully cut off: the other two still assemble a quorum.
    c.network.set_partitions([{"n1"}])
    assert checker.quorum_connected()
    # Singleton split: nobody can collect a second vote.
    c.network.set_partitions([{"n1"}, {"n2"}, {"n3"}])
    assert not checker.quorum_connected()
    c.network.clear_partitions()
    assert checker.quorum_connected()
    # One-way blocks count: a pair needs BOTH directions usable.  n1's
    # egress is dead and the n2<->n3 round trip is severed one-way, so no
    # mutually usable pair remains even though 4 of 6 directions are up.
    c.network.block_direction("n1", "n2")
    c.network.block_direction("n1", "n3")
    assert checker.quorum_connected()  # n2 + n3 still mutual
    c.network.block_direction("n2", "n3")
    assert not checker.quorum_connected()
    c.network.unblock_direction("n2", "n3")
    # Crashed voters cannot contribute even over perfect links.
    c.node("n2").crash()
    c.node("n3").crash()
    assert not checker.quorum_connected()


def test_flags_no_leader_window_and_cumulative_budget():
    """Followers that simply never campaign over a perfect network are a
    liveness bug by definition — both the single-window and cumulative
    detectors must fire (once each, not once per sample)."""
    c = _sleepy_cluster(3)
    checker = LivenessChecker(
        c,
        interval_ms=100.0,
        leaderless_bound_ms=1_000.0,
        leaderless_total_bound_ms=3_000.0,
    )
    checker.install()
    c.run_until(6_000.0)
    kinds = [v.kind for v in checker.violations]
    assert kinds == ["no_leader", "no_leader"]
    window, total = checker.violations
    assert window.time == pytest.approx(1_100.0, abs=checker.interval_ms)
    assert total.time == pytest.approx(3_100.0, abs=checker.interval_ms)
    assert len(c.trace.of_kind("liveness_no_leader")) == 2


def test_genuine_partition_never_false_positives():
    """A singleton split leaves the cluster leaderless for as long as the
    run lasts — and that is the *correct* behaviour, so every detector
    must stay silent."""
    c = make_raft_cluster(3)
    c.run_until_leader()
    checker = LivenessChecker(
        c,
        interval_ms=100.0,
        leaderless_bound_ms=800.0,
        leaderless_total_bound_ms=1_500.0,
        term_churn_bound=2,
        commit_stall_bound_ms=800.0,
    )
    checker.install()
    c.network.set_partitions([{"n1"}, {"n2"}, {"n3"}])
    c.run_for(10_000.0)
    assert not checker.quorum_connected()
    checker.assert_live()


def test_flags_election_livelock_under_gray_response_cycle():
    """Without prevote, a cycle of nearly-dead response directions keeps
    every candidacy unanswered while terms ratchet — and since every
    direction still has loss < 1.0 the quorum counts as connected, which
    is exactly the gray shape the livelock detector exists for."""
    c = make_raft_cluster(3, raft=RaftConfig(prevote=False))
    for src, dst in (("n1", "n2"), ("n2", "n3"), ("n3", "n1")):
        c.network.degrade_direction(src, dst, loss=0.998)
    checker = LivenessChecker(
        c,
        interval_ms=100.0,
        leaderless_bound_ms=1e9,
        leaderless_total_bound_ms=1e9,
        term_churn_bound=5,
    )
    checker.install()
    c.run_until(20_000.0)
    assert checker.quorum_connected()
    kinds = {v.kind for v in checker.violations}
    assert "election_livelock" in kinds
    assert c.trace.of_kind("liveness_election_livelock")


def test_flags_commit_stall_under_gray_egress():
    """A leader whose appends mostly die on the wire (but whose links are
    not *down*) stalls the commit watermark with uncommitted entries
    pending — the third gray shape.  check_quorum is off so the leader
    does not step down and turn this into a no-leader episode."""
    c = make_raft_cluster(3, raft=RaftConfig(check_quorum=False))
    client = c.add_client("cl")
    c.run_until_leader()
    client.submit(kv_put("k", 1))
    c.run_for(2_000.0)
    baseline = max(c.node(n).commit_index for n in c.names)
    assert baseline > 0
    for src in c.names:
        for dst in c.names:
            if src != dst:
                c.network.degrade_direction(src, dst, loss=0.998)
    checker = LivenessChecker(
        c,
        interval_ms=100.0,
        leaderless_bound_ms=1e9,
        leaderless_total_bound_ms=1e9,
        commit_stall_bound_ms=1_500.0,
    )
    checker.install()
    client.submit(kv_put("k", 2))
    c.run_for(10_000.0)
    kinds = {v.kind for v in checker.violations}
    assert "commit_stall" in kinds
    assert c.trace.of_kind("liveness_commit_stall")
    assert max(c.node(n).commit_index for n in c.names) == baseline
