"""Membership scenario steps: serialization, e2e behavior, elastic library."""

import pytest

from repro.scenarios.library import (
    elastic_grow,
    elastic_replace_all,
    elastic_shrink,
)
from repro.scenarios.scenario import Scenario
from repro.scenarios.steps import (
    AddNode,
    Churn,
    RemoveNode,
    ReplaceNode,
    step_from_dict,
)
from repro.sim.process import ProcessState
from tests.conftest import make_raft_cluster


# --------------------------------------------------------------------- #
# serialization
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "step",
    [
        AddNode(at_ms=1_000.0, node="n9"),
        RemoveNode(at_ms=2_000.0, node="@leader", retry_ms=250.0, max_retries=8),
        ReplaceNode(at_ms=3_000.0, node="n1", replacement="n9"),
    ],
    ids=lambda s: s.kind,
)
def test_membership_steps_round_trip(step):
    assert step_from_dict(step.to_dict()) == step


def test_scenario_with_membership_steps_round_trips():
    s = Scenario(
        "elastic",
        [AddNode(at_ms=1_000.0, node="n4"), RemoveNode(at_ms=5_000.0, node="n1")],
    )
    loaded = Scenario.from_json(s.to_json())
    assert loaded.name == s.name
    assert loaded.steps == s.steps


def test_membership_step_validation():
    with pytest.raises(ValueError):
        AddNode(at_ms=0.0, node="@leader")  # joiner needs a concrete name
    with pytest.raises(ValueError):
        ReplaceNode(at_ms=0.0, node="n1", replacement="@leader")
    with pytest.raises(ValueError):
        RemoveNode(at_ms=0.0, node="n1", retry_ms=0.0)
    with pytest.raises(ValueError):
        RemoveNode(at_ms=0.0, node="n1", max_retries=-1)


# --------------------------------------------------------------------- #
# end-to-end behavior
# --------------------------------------------------------------------- #


def applied_steps(c, kind):
    return [
        r
        for r in c.trace.of_kind("scenario_step")
        if r.get("step") == kind and not r.get("skipped")
    ]


def test_add_and_remove_steps_reshape_the_cluster():
    c = make_raft_cluster(3)
    Scenario(
        "reshape",
        [
            AddNode(at_ms=1_500.0, node="n4"),
            RemoveNode(at_ms=7_000.0, node="n1"),
        ],
    ).install(c)
    c.run_for(14_000)
    assert c.members() == ["n2", "n3", "n4"]
    voters = c.node(c.leader()).membership.voters
    assert voters == ("n2", "n3", "n4")
    assert not c.trace.of_kind("membership_giveup")


def test_remove_leader_selector_pins_the_victim():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    Scenario("behead", [RemoveNode(at_ms=1_000.0, node="@leader")]).install(c)
    c.run_for(10_000)
    # The node that led at the step instant is gone even though leadership
    # moved during the retry window.
    assert leader not in c.members()
    assert len(c.members()) == 2


def test_replace_node_preserves_capacity():
    c = make_raft_cluster(3)
    Scenario(
        "swap", [ReplaceNode(at_ms=1_500.0, node="n1", replacement="n4")]
    ).install(c)
    c.run_for(14_000)
    assert c.members() == ["n2", "n3", "n4"]
    assert c.node("n1").state is ProcessState.STOPPED


def test_membership_steps_are_no_ops_when_disabled():
    c = make_raft_cluster(3)
    Scenario(
        "inert",
        [AddNode(at_ms=500.0, node="n4"), RemoveNode(at_ms=900.0, node="n1")],
    ).install(c, membership_enabled=False)
    c.run_for(3_000)
    assert c.members() == ["n1", "n2", "n3"]
    steps = c.trace.of_kind("scenario_step")
    assert len(steps) == 2 and all(r.get("skipped") for r in steps)


def test_churn_of_a_removed_node_is_a_traced_no_op():
    c = make_raft_cluster(3)
    Scenario(
        "churn-the-dead",
        [
            RemoveNode(at_ms=1_000.0, node="n3"),
            Churn(at_ms=8_000.0, nodes=("n3",), down_ms=500.0),
        ],
    ).install(c)
    c.run_for(12_000)
    assert c.node("n3").state is ProcessState.STOPPED
    churns = [
        r for r in c.trace.of_kind("scenario_step") if r.get("step") == "churn"
    ]
    assert len(churns) == 1
    assert churns[0].get("skipped")
    assert "removed" in churns[0].get("reason", "")


# --------------------------------------------------------------------- #
# elastic library builders
# --------------------------------------------------------------------- #


def test_elastic_grow_derives_fresh_names():
    s = elastic_grow(["n1", "n2", "n3"], joiners=2)
    adds = [st for st in s.steps if isinstance(st, AddNode)]
    assert [a.node for a in adds] == ["n4", "n5"]


def test_elastic_shrink_defaults_to_three_survivors():
    s = elastic_shrink(["n1", "n2", "n3", "n4", "n5"])
    removals = [st.node for st in s.steps if isinstance(st, RemoveNode)]
    assert len(removals) == 2
    assert "n1" not in removals and "n2" not in removals and "n3" not in removals


def test_elastic_shrink_can_target_the_leader_first():
    s = elastic_shrink(["n1", "n2", "n3", "n4", "n5"], include_leader=True)
    removals = [st.node for st in s.steps if isinstance(st, RemoveNode)]
    assert removals[0] == "@leader"


def test_elastic_replace_all_rotates_every_member():
    s = elastic_replace_all(["n1", "n2", "n3"])
    swaps = [st for st in s.steps if isinstance(st, ReplaceNode)]
    assert [(st.node, st.replacement) for st in swaps] == [
        ("n1", "n4"),
        ("n2", "n5"),
        ("n3", "n6"),
    ]


def test_elastic_grow_end_to_end():
    c = make_raft_cluster(3)
    elastic_grow(["n1", "n2", "n3"], start_ms=1_500, gap_ms=4_000, joiners=2).install(c)
    c.run_for(14_000)
    assert c.members() == ["n1", "n2", "n3", "n4", "n5"]
    assert len(c.node(c.leader()).membership.voters) == 5
