"""Scenario library: every canonical scenario builds, runs, and stays safe."""

import pytest

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.dynatune.policy import StaticPolicy
from repro.scenarios.library import (
    SCENARIO_BUILDERS,
    build_all,
    build_scenario,
    scenario_names,
)
from repro.scenarios.safety import SafetyChecker
from repro.scenarios.scenario import Scenario

NAMES = ["n1", "n2", "n3", "n4", "n5"]


def test_library_has_at_least_eight_scenarios():
    assert len(scenario_names()) >= 8


def test_build_all_matches_registry():
    scenarios = build_all(NAMES)
    assert [s.name for s in scenarios] == list(scenario_names())


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        build_scenario("volcano", NAMES)


def test_small_clusters_rejected():
    with pytest.raises(ValueError, match=">= 3 nodes"):
        build_scenario("symmetric_split", ["n1", "n2"])


@pytest.mark.parametrize("name", scenario_names())
def test_every_scenario_is_pure_data(name):
    """Every library entry must survive the JSON round trip unchanged."""
    sc = build_scenario(name, NAMES)
    clone = Scenario.from_json(sc.to_json())
    assert clone.steps == sc.steps
    assert clone.name == sc.name


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_runs_and_applies_steps(name):
    cluster = build_cluster(
        ClusterConfig(n_nodes=5, seed=11, rtt_ms=50.0),
        lambda n: StaticPolicy(election_timeout_ms=300.0, heartbeat_interval_ms=50.0),
    )
    sc = build_scenario(name, cluster.names)
    sc.install(cluster)
    cluster.start()
    cluster.run_until(sc.end_ms + 5_000.0)
    applied = [
        r for r in cluster.trace.of_kind("scenario_step") if not r.get("skipped")
    ]
    assert applied, f"scenario {name} applied nothing"


def test_leader_churn_emits_failure_records():
    cluster = build_cluster(
        ClusterConfig(n_nodes=5, seed=11, rtt_ms=50.0),
        lambda n: StaticPolicy(election_timeout_ms=300.0, heartbeat_interval_ms=50.0),
    )
    sc = build_scenario("leader_churn_loop", cluster.names)
    sc.install(cluster)
    cluster.start()
    cluster.run_until(sc.end_ms + 5_000.0)
    # Each non-skipped churn kill is a proper leader-failure episode.
    kills = cluster.trace.of_kind("fault_leader_pause")
    assert kills


def test_builders_accept_overrides():
    sc = SCENARIO_BUILDERS["symmetric_split"](NAMES, start_ms=1_000.0, cycles=1)
    assert sc.steps[0].at_ms == 1_000.0
    assert sc.steps[0].repeat is None
