"""Scenario installation: step application, selectors, traces, JSON."""

import pytest

from repro.scenarios.scenario import Scenario
from repro.scenarios.steps import (
    Crash,
    Flap,
    Heal,
    Partition,
    Pause,
    Recover,
    Repeat,
    SetLoss,
    SetRtt,
)
from repro.sim.process import ProcessState
from tests.conftest import make_raft_cluster


def steps_of(cluster, **match):
    records = cluster.trace.of_kind("scenario_step")
    return [r for r in records if all(r.get(k) == v for k, v in match.items())]


def test_network_weather_steps_apply():
    c = make_raft_cluster(3)
    Scenario(
        "weather",
        [
            SetRtt(at_ms=100.0, rtt_ms=180.0),
            SetLoss(at_ms=100.0, loss=0.25),
            SetRtt(at_ms=200.0, rtt_ms=60.0, pair=("n1", "n2")),
        ],
    ).install(c)
    c.run_until(300.0)
    assert c.network.link("n2", "n3").rtt_ms == pytest.approx(180.0)
    assert c.network.link("n1", "n2").rtt_ms == pytest.approx(60.0)
    assert c.network.link("n1", "n3").loss.rate() == pytest.approx(0.25)
    assert len(steps_of(c, step="set_rtt")) == 2


def test_partition_and_heal_apply():
    c = make_raft_cluster(3)
    Scenario(
        "split",
        [
            Partition(at_ms=100.0, groups=(("n1",),)),
            Heal(at_ms=500.0),
        ],
    ).install(c)
    c.run_until(200.0)
    assert c.network.partitioned("n1", "n2")
    assert not c.network.partitioned("n2", "n3")
    c.run_until(600.0)
    assert not c.network.partitioned("n1", "n2")


def test_leader_selector_resolves_at_apply_time():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    t = c.loop.now + 100.0
    Scenario(
        "kill-leader",
        [Pause(at_ms=t, node="@leader", duration_ms=2_000.0)],
    ).install(c)
    c.run_until(t + 50.0)
    assert c.node(leader).state is ProcessState.PAUSED
    rec = steps_of(c, step="pause")[0]
    assert rec.get("target") == leader


def test_unresolvable_leader_skips_and_traces():
    c = make_raft_cluster(3)
    # At t=1 ms no leader exists yet; the step must skip, not crash.
    Scenario("early", [Pause(at_ms=1.0, node="@leader", duration_ms=500.0)]).install(c)
    c.run_until(10.0)
    rec = steps_of(c, step="pause")[0]
    assert rec.get("skipped") is True


def test_crash_recover_steps():
    c = make_raft_cluster(3)
    Scenario(
        "cycle",
        [
            Crash(at_ms=100.0, node="n2"),
            Recover(at_ms=1_000.0, node="n2"),
            Recover(at_ms=1_100.0, node="n2"),  # second recover: skipped
        ],
    ).install(c)
    c.run_until(500.0)
    assert c.node("n2").state is ProcessState.CRASHED
    c.run_until(1_200.0)
    assert c.node("n2").state is ProcessState.RUNNING
    recs = steps_of(c, step="recover")
    assert [bool(r.get("skipped")) for r in recs] == [False, True]


def test_flap_takes_link_down_and_back_up():
    c = make_raft_cluster(3)
    Scenario(
        "blink",
        [Flap(at_ms=100.0, a="n1", b="n2", down_ms=200.0)],
    ).install(c)
    c.run_until(150.0)
    assert not c.network.link("n1", "n2").up
    assert not c.network.link("n2", "n1").up
    assert c.network.link("n1", "n3").up
    c.run_until(400.0)
    assert c.network.link("n1", "n2").up


def test_repeat_applies_each_occurrence():
    c = make_raft_cluster(3)
    Scenario(
        "pulse",
        [SetRtt(at_ms=100.0, rtt_ms=99.0, repeat=Repeat(every_ms=100.0, times=4))],
    ).install(c)
    c.run_until(1_000.0)
    recs = steps_of(c, step="set_rtt")
    assert [r.get("occurrence") for r in recs] == [0, 1, 2, 3]


def test_install_validates_node_names():
    c = make_raft_cluster(3)
    bad = Scenario("bad", [Crash(at_ms=10.0, node="n99")])
    with pytest.raises(ValueError, match="unknown nodes"):
        bad.install(c)


def test_end_ms_spans_longest_effect():
    sc = Scenario(
        "extent",
        [
            SetRtt(at_ms=5_000.0, rtt_ms=10.0),
            Pause(at_ms=1_000.0, node="n1", duration_ms=9_000.0),
        ],
    )
    assert sc.end_ms == 10_000.0
    assert Scenario("empty", []).end_ms == 0.0


def test_scenario_json_round_trip():
    sc = Scenario(
        "rt",
        [
            Partition(at_ms=10.0, groups=(("n1", "@leader"),)),
            Heal(at_ms=20.0, repeat=Repeat(every_ms=30.0, times=2)),
        ],
        description="round trip",
    )
    clone = Scenario.from_json(sc.to_json())
    assert clone.name == sc.name
    assert clone.description == sc.description
    assert clone.steps == sc.steps


def test_scenario_from_dict_strictness():
    with pytest.raises(ValueError, match="unknown keys"):
        Scenario.from_dict({"name": "x", "steps": [], "bogus": 1})
    with pytest.raises(ValueError, match="'name' and 'steps'"):
        Scenario.from_dict({"description": "no name"})


def test_on_apply_observer_fires_per_occurrence():
    c = make_raft_cluster(3)
    seen = []
    Scenario(
        "obs",
        [Heal(at_ms=50.0, repeat=Repeat(every_ms=50.0, times=3))],
    ).install(c, on_apply=seen.append)
    c.run_until(300.0)
    assert len(seen) == 3


def test_overlapping_flaps_keep_link_down_for_latest_window():
    """A stale restore timer from an earlier flap must not raise the link
    while a newer flap's down-window is still active."""
    c = make_raft_cluster(3)
    Scenario(
        "overlap",
        [
            Flap(at_ms=100.0, a="n1", b="n2", down_ms=1_000.0),
            Flap(at_ms=600.0, a="n1", b="n2", down_ms=1_000.0),
        ],
    ).install(c)
    c.run_until(1_200.0)  # first flap's restore (t=1100) has fired
    assert not c.network.link("n1", "n2").up
    c.run_until(1_700.0)  # second flap's restore (t=1600) applies
    assert c.network.link("n1", "n2").up


def test_stale_churn_recover_does_not_cut_later_crash_short():
    """A Churn occurrence's auto-recover timer must not revive a node that
    a later Crash step took down for longer (crash-generation guard)."""
    from repro.scenarios.steps import Churn

    c = make_raft_cluster(3)
    Scenario(
        "stale-recover",
        [
            Churn(at_ms=100.0, nodes=("n1",), down_ms=5_000.0),  # recover armed t=5100
            Recover(at_ms=1_000.0, node="n1"),
            Crash(at_ms=2_000.0, node="n1"),  # down until its own Recover
            Recover(at_ms=8_000.0, node="n1"),
        ],
    ).install(c)
    c.run_until(6_000.0)  # churn's stale timer has fired by now
    assert c.node("n1").state is ProcessState.CRASHED
    c.run_until(9_000.0)
    assert c.node("n1").state is ProcessState.RUNNING
