"""Gray failures: asymmetric link faults, clock skew steps, duplication.

Behavior of the per-direction network primitives and the scenario steps
driving them — including the token guards that keep overlapping windows
and mixed fault kinds (gray + pause) from double-arming restores.
"""

import pytest

from repro.cluster.faults import pause_for
from repro.raft.types import Role
from repro.scenarios.scenario import Scenario
from repro.scenarios.steps import (
    BlockLink,
    GrayLink,
    Pause,
    SetClock,
    SetDuplicate,
)
from repro.sim.process import ProcessState
from tests.conftest import make_raft_cluster


def steps_of(cluster, **match):
    records = cluster.trace.of_kind("scenario_step")
    return [r for r in records if all(r.get(k) == v for k, v in match.items())]


# --------------------------------------------------------------------- #
# network primitives
# --------------------------------------------------------------------- #


def test_block_direction_is_one_way():
    c = make_raft_cluster(3)
    c.network.block_direction("n1", "n2")
    assert not c.network.link("n1", "n2").up
    assert c.network.link("n2", "n1").up
    c.network.unblock_direction("n1", "n2")
    assert c.network.link("n1", "n2").up


def test_degrade_direction_returns_previous_values():
    c = make_raft_cluster(3)
    link = c.network.link("n1", "n2")
    before_loss = link.loss.rate()
    prev = c.network.degrade_direction("n1", "n2", loss=0.9, one_way_ms=150.0)
    assert prev[0] == pytest.approx(before_loss)
    assert link.loss.rate() == pytest.approx(0.9)
    # The reverse direction is untouched.
    assert c.network.link("n2", "n1").loss.rate() == pytest.approx(before_loss)
    restored = c.network.degrade_direction(
        "n1", "n2", loss=prev[0], one_way_ms=prev[1]
    )
    assert restored[0] == pytest.approx(0.9)
    assert link.loss.rate() == pytest.approx(before_loss)


def test_connected_semantics():
    c = make_raft_cluster(3)
    net = c.network
    assert net.connected("n1", "n2")
    # Heavy-but-partial loss is still "connected" — that is what makes
    # gray failures gray.
    net.degrade_direction("n1", "n2", loss=0.95)
    assert net.connected("n1", "n2")
    # Total loss in one direction severs the round trip.
    net.degrade_direction("n1", "n2", loss=1.0)
    assert not net.connected("n1", "n2")
    net.degrade_direction("n1", "n2", loss=0.0)
    # One blocked direction severs the round trip too.
    net.block_direction("n2", "n1")
    assert not net.connected("n1", "n2")
    net.unblock_direction("n2", "n1")
    assert net.connected("n1", "n2")
    net.set_partitions([{"n1"}])
    assert not net.connected("n1", "n2")
    net.clear_partitions()
    assert net.connected("n1", "n2")


# --------------------------------------------------------------------- #
# BlockLink / GrayLink windows and token guards
# --------------------------------------------------------------------- #


def test_block_link_directions_and_window():
    c = make_raft_cluster(3)
    Scenario(
        "oneway",
        [BlockLink(at_ms=100.0, a="n1", b="n2", direction="a_to_b", duration_ms=400.0)],
    ).install(c)
    c.run_until(200.0)
    assert not c.network.link("n1", "n2").up
    assert c.network.link("n2", "n1").up
    c.run_until(600.0)
    assert c.network.link("n1", "n2").up


def test_overlapping_block_windows_latest_wins():
    c = make_raft_cluster(3)
    Scenario(
        "overlap",
        [
            BlockLink(at_ms=100.0, a="n1", b="n2", direction="a_to_b", duration_ms=300.0),
            BlockLink(at_ms=300.0, a="n1", b="n2", direction="a_to_b", duration_ms=2_000.0),
        ],
    ).install(c)
    # t=500: the first window's restore has fired but must be a no-op —
    # the second window re-armed the same directed link.
    c.run_until(500.0)
    assert not c.network.link("n1", "n2").up
    c.run_until(2_500.0)
    assert c.network.link("n1", "n2").up


def test_permanent_block_cancels_pending_restore():
    c = make_raft_cluster(3)
    Scenario(
        "perm",
        [
            BlockLink(at_ms=100.0, a="n1", b="n2", direction="a_to_b", duration_ms=300.0),
            BlockLink(at_ms=200.0, a="n1", b="n2", direction="a_to_b"),
        ],
    ).install(c)
    c.run_until(5_000.0)
    assert not c.network.link("n1", "n2").up


def test_gray_link_degrades_and_restores():
    c = make_raft_cluster(3)
    link = c.network.link("n1", "n2")
    base_loss = link.loss.rate()
    Scenario(
        "gray",
        [
            GrayLink(
                at_ms=100.0,
                a="n1",
                b="n2",
                direction="a_to_b",
                loss=0.9,
                one_way_ms=200.0,
                duration_ms=500.0,
            )
        ],
    ).install(c)
    c.run_until(300.0)
    assert link.loss.rate() == pytest.approx(0.9)
    assert c.network.link("n2", "n1").loss.rate() == pytest.approx(base_loss)
    c.run_until(700.0)
    assert link.loss.rate() == pytest.approx(base_loss)


def test_overlapping_gray_windows_latest_wins():
    c = make_raft_cluster(3)
    link = c.network.link("n1", "n2")
    Scenario(
        "gray-overlap",
        [
            GrayLink(at_ms=100.0, a="n1", b="n2", loss=0.5, duration_ms=300.0),
            GrayLink(at_ms=300.0, a="n1", b="n2", loss=0.9, duration_ms=1_000.0),
        ],
    ).install(c)
    c.run_until(500.0)  # first restore fired; second window must survive
    assert link.loss.rate() == pytest.approx(0.9)
    # The surviving window restores the value it displaced — the earlier
    # window's degradation, whose own (suppressed) restore never ran.
    c.run_until(1_500.0)
    assert link.loss.rate() == pytest.approx(0.5)


def test_block_and_gray_token_families_are_independent():
    """A BlockLink window on a link must not suppress (or be suppressed
    by) a GrayLink window on the same directed link: the two step kinds
    guard their restores with separate token families."""
    c = make_raft_cluster(3)
    link = c.network.link("n1", "n2")
    base_loss = link.loss.rate()
    Scenario(
        "mixed",
        [
            GrayLink(at_ms=100.0, a="n1", b="n2", loss=0.8, duration_ms=600.0),
            BlockLink(at_ms=200.0, a="n1", b="n2", direction="a_to_b", duration_ms=200.0),
        ],
    ).install(c)
    c.run_until(300.0)
    assert not link.up
    assert link.loss.rate() == pytest.approx(0.8)
    c.run_until(500.0)  # block window over, gray window still on
    assert link.up
    assert link.loss.rate() == pytest.approx(0.8)
    c.run_until(800.0)  # gray window over
    assert link.loss.rate() == pytest.approx(base_loss)


# --------------------------------------------------------------------- #
# SetClock / SetDuplicate behavior
# --------------------------------------------------------------------- #


def test_set_clock_skews_and_reverts_a_live_node():
    c = make_raft_cluster(3)
    Scenario(
        "skew",
        [
            SetClock(at_ms=100.0, node="n1", offset_ms=80.0, drift=0.01),
            SetClock(at_ms=600.0, node="n1"),
        ],
    ).install(c)
    c.run_until(200.0)
    clock = c.node("n1").clock
    assert clock.skewed
    assert clock.offset_ms == pytest.approx(80.0)
    assert clock.drift == pytest.approx(0.01)
    assert c.node("n2").clock.skewed is False
    c.run_until(700.0)
    assert not clock.skewed


def test_set_duplicate_applies_globally_and_per_pair():
    c = make_raft_cluster(3)
    Scenario(
        "dup",
        [
            SetDuplicate(at_ms=100.0, duplicate_p=0.05),
            SetDuplicate(at_ms=200.0, duplicate_p=0.2, pair=("n1", "n2")),
        ],
    ).install(c)
    c.run_until(300.0)
    assert c.network.link("n2", "n3").duplicate_p == pytest.approx(0.05)
    assert c.network.link("n1", "n2").duplicate_p == pytest.approx(0.2)
    assert c.network.link("n2", "n1").duplicate_p == pytest.approx(0.2)


# --------------------------------------------------------------------- #
# raft behaviour under asymmetric faults
# --------------------------------------------------------------------- #


def test_leader_with_egress_only_failure_steps_down():
    """A leader that can hear but not speak (every outbound server link
    blocked, inbound open) stops receiving append acks, so check_quorum
    retires it within a couple of election timeouts.  The followers are
    also severed from each other so no successor can depose the zombie
    with a higher term first — check_quorum must be what ends it."""
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    p1, p2 = [n for n in c.names if n != leader]
    for peer in (p1, p2):
        c.network.block_direction(leader, peer)
    c.network.block_direction(p1, p2)
    c.network.block_direction(p2, p1)
    c.run_for(2_000.0)
    assert c.node(leader).role is not Role.LEADER
    lost = [r for r in c.trace.of_kind("quorum_lost") if r.node == leader]
    assert lost, "egress-dead leader should step down via check_quorum"


def test_one_way_isolated_node_prevote_does_not_inflate_term():
    """An ingress-blocked follower hears nothing and campaigns forever —
    but with prevote its probes never bump anyone's real term, so when
    the fault heals the incumbent is still leader at the same term (the
    disruption prevote exists to prevent)."""
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    victim = next(n for n in c.names if n != leader)
    term_before = c.node(leader).current_term
    for other in c.names:
        if other != victim:
            c.network.block_direction(other, victim)
    c.run_for(10_000.0)
    # Pre-vote probes do not even inflate the isolated node's own term.
    assert c.node(victim).current_term == term_before
    for other in c.names:
        if other != victim:
            c.network.unblock_direction(other, victim)
    c.run_for(3_000.0)
    assert c.node(leader).role is Role.LEADER
    assert all(c.node(n).current_term == term_before for n in c.names)


# --------------------------------------------------------------------- #
# combined path: gray-degraded + paused node (stall interaction audit)
# --------------------------------------------------------------------- #


def test_gray_degraded_paused_node_does_not_double_arm_resume():
    """A scenario Pause landing on a node already stall-paused must skip
    (not stack a second resume timer), the stall's own resume must still
    fire, and the node's gray-link restore must stay on its own schedule
    — pause generations and link tokens are independent families."""
    c = make_raft_cluster(3)
    node = c.node("n1")
    link = c.network.link("n1", "n2")
    base_loss = link.loss.rate()
    Scenario(
        "gray+pause",
        [
            GrayLink(at_ms=100.0, a="n1", b="n2", loss=0.9, duration_ms=2_000.0),
            Pause(at_ms=400.0, node="n1", duration_ms=1_000.0),
        ],
    ).install(c)
    c.run_until(250.0)
    # Stall-style pause arrives first (ends at t=1050).
    pause_for(c.loop, node, 800.0, kind="stall_pause")
    c.run_until(500.0)
    # The scenario Pause fired at t=400 into a paused node: skipped.
    skipped = steps_of(c, step="pause")
    assert len(skipped) == 1 and skipped[0].get("skipped")
    assert node.state is ProcessState.PAUSED
    c.run_until(1_200.0)
    # Only the stall's resume applies — and exactly once.
    assert node.state is ProcessState.RUNNING
    assert len(c.trace.of_kind("process_resumed")) == 1
    # The pause dance never touched the gray window.
    assert link.loss.rate() == pytest.approx(0.9)
    c.run_until(2_500.0)
    assert link.loss.rate() == pytest.approx(base_loss)


def test_pause_resume_pause_keeps_latest_deadline_under_gray_fault():
    """The generation-token guard across a resume/re-pause cycle while the
    node's links are gray-degraded: the first pause's stale timer must not
    cut the second pause short."""
    c = make_raft_cluster(3)
    node = c.node("n2")
    c.network.degrade_direction("n2", "n1", loss=0.7, one_way_ms=120.0)
    pause_for(c.loop, node, 1_000.0)  # resume timer armed for t+1000
    c.run_until(300.0)
    node.resume()
    pause_for(c.loop, node, 2_000.0)  # must sleep until t=2300
    c.run_until(1_500.0)  # the stale timer has fired by now
    assert node.state is ProcessState.PAUSED
    c.run_until(2_500.0)
    assert node.state is ProcessState.RUNNING
