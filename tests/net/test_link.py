"""Link primitives."""

import numpy as np
import pytest

from repro.net.link import Link
from repro.net.loss_models import BernoulliLoss


def test_defaults():
    link = Link("a", "b")
    assert link.up
    assert link.one_way_ms == 0.5
    assert not link.draw_drop()
    assert not link.draw_duplicate()


def test_set_rtt_halves_to_one_way():
    link = Link("a", "b")
    link.set_rtt(100.0)
    assert link.one_way_ms == 50.0
    assert link.rtt_ms == 100.0


def test_negative_rtt_rejected():
    with pytest.raises(ValueError):
        Link("a", "b").set_rtt(-1.0)


def test_bad_duplicate_p_rejected():
    with pytest.raises(ValueError):
        Link("a", "b", duplicate_p=1.5)


def test_loss_rate_passthrough():
    link = Link("a", "b", loss=BernoulliLoss(0.0), rng=np.random.default_rng(0))
    link.set_loss_rate(1.0)
    assert link.draw_drop()


def test_duplicate_draws():
    link = Link("a", "b", duplicate_p=1.0, rng=np.random.default_rng(0))
    assert link.draw_duplicate()


def test_delay_draw_positive():
    link = Link("a", "b", rng=np.random.default_rng(0))
    link.set_rtt(0.0)
    assert link.draw_delay() > 0.0
