"""Delay models: distribution shape, retargeting, positivity."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.net.delay_models import (
    MIN_DELAY_MS,
    ConstantDelay,
    LognormalJitterDelay,
    NormalJitterDelay,
    UniformJitterDelay,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_constant_delay_exact(rng):
    d = ConstantDelay(25.0)
    assert all(d.sample(rng) == 25.0 for _ in range(5))


def test_constant_zero_clamped_to_min(rng):
    d = ConstantDelay(0.0)
    assert d.sample(rng) == MIN_DELAY_MS


def test_negative_base_rejected():
    with pytest.raises(ValueError):
        ConstantDelay(-1.0)


def test_set_base_retargets(rng):
    d = ConstantDelay(10.0)
    d.set_base(50.0)
    assert d.sample(rng) == 50.0
    with pytest.raises(ValueError):
        d.set_base(-5.0)


def test_uniform_jitter_within_band(rng):
    d = UniformJitterDelay(100.0, 10.0)
    samples = np.array([d.sample(rng) for _ in range(2000)])
    assert samples.min() >= 90.0
    assert samples.max() <= 110.0
    assert abs(samples.mean() - 100.0) < 1.0


def test_uniform_jitter_negative_rejected():
    with pytest.raises(ValueError):
        UniformJitterDelay(100.0, -1.0)


def test_normal_jitter_statistics(rng):
    d = NormalJitterDelay(100.0, 2.0)
    samples = np.array([d.sample(rng) for _ in range(4000)])
    assert abs(samples.mean() - 100.0) < 0.2
    assert abs(samples.std() - 2.0) < 0.2


def test_normal_zero_sigma_is_deterministic(rng):
    d = NormalJitterDelay(42.0, 0.0)
    assert {d.sample(rng) for _ in range(10)} == {42.0}


def test_normal_never_nonpositive(rng):
    d = NormalJitterDelay(0.5, 5.0)  # frequently would go negative
    samples = [d.sample(rng) for _ in range(2000)]
    assert min(samples) >= MIN_DELAY_MS


def test_lognormal_right_skew(rng):
    d = LognormalJitterDelay(50.0, mu_log=1.0, sigma_log=1.0)
    samples = np.array([d.sample(rng) for _ in range(4000)])
    assert samples.min() >= 50.0
    assert samples.mean() > np.median(samples)  # right skew


def test_lognormal_negative_sigma_rejected():
    with pytest.raises(ValueError):
        LognormalJitterDelay(50.0, 0.0, -0.1)


@given(base=st.floats(min_value=0.0, max_value=1e4), jitter=st.floats(min_value=0.0, max_value=1e3))
def test_uniform_jitter_always_positive(base, jitter):
    d = UniformJitterDelay(base, jitter)
    rng = np.random.default_rng(1)
    for _ in range(20):
        assert d.sample(rng) >= MIN_DELAY_MS


@given(base=st.floats(min_value=0.0, max_value=1e4), sigma=st.floats(min_value=0.0, max_value=1e3))
def test_normal_jitter_always_positive(base, sigma):
    d = NormalJitterDelay(base, sigma)
    rng = np.random.default_rng(2)
    for _ in range(20):
        assert d.sample(rng) >= MIN_DELAY_MS
