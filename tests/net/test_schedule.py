"""NetworkSchedule: profile builders and installation."""

import pytest

from repro.net.network import Network
from repro.net.schedule import (
    NetworkSchedule,
    ScheduleAction,
    constant_profile,
    gradual_rtt_profile,
    loss_staircase_profile,
    radical_rtt_profile,
)
from repro.net.topology import uniform_topology
from repro.sim.clock import MINUTE
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry


def test_constant_profile_single_action():
    s = constant_profile(rtt_ms=100.0, loss=0.1)
    assert len(s) == 1
    assert s.actions[0].rtt_ms == 100.0
    assert s.actions[0].loss == 0.1


def test_gradual_profile_paper_pattern():
    s = gradual_rtt_profile()  # 50 -> 200 -> 50, 10ms steps, 1min dwell
    values = [a.rtt_ms for a in s.actions]
    assert values[0] == 50.0
    assert max(values) == 200.0
    assert values[-1] == 50.0
    assert values.count(200.0) == 1  # peak not repeated
    # 16 ascending values + 15 descending = 31 actions.
    assert len(values) == 31
    # one-minute dwell spacing
    assert s.actions[1].at_ms - s.actions[0].at_ms == MINUTE


def test_gradual_profile_monotone_up_then_down():
    s = gradual_rtt_profile()
    values = [a.rtt_ms for a in s.actions]
    peak = values.index(200.0)
    assert values[: peak + 1] == sorted(values[: peak + 1])
    assert values[peak:] == sorted(values[peak:], reverse=True)


def test_gradual_profile_validation():
    with pytest.raises(ValueError):
        gradual_rtt_profile(low_ms=200.0, high_ms=100.0)
    with pytest.raises(ValueError):
        gradual_rtt_profile(step_ms=0.0)


def test_gradual_profile_non_divisible_step_hits_high():
    s = gradual_rtt_profile(low_ms=50.0, high_ms=75.0, step_ms=10.0)
    values = [a.rtt_ms for a in s.actions]
    assert max(values) == 75.0


def test_radical_profile_paper_pattern():
    s = radical_rtt_profile()
    assert [a.rtt_ms for a in s.actions] == [50.0, 500.0, 50.0]
    assert [a.at_ms for a in s.actions] == [0.0, MINUTE, 2 * MINUTE]


def test_loss_staircase_up_and_down():
    s = loss_staircase_profile()
    losses = [a.loss for a in s.actions if a.loss is not None]
    assert losses[0] == 0.0
    assert max(losses) == 0.30
    assert losses.count(0.30) == 1
    assert losses[-1] == 0.0
    assert len(losses) == 13  # 7 up + 6 down
    assert s.actions[0].rtt_ms == 200.0  # RTT pinned


def test_value_at_tracks_latest():
    s = gradual_rtt_profile(dwell_ms=1000.0)
    assert s.value_at(0.0)[0] == 50.0
    assert s.value_at(1500.0)[0] == 60.0
    assert s.value_at(1e9)[0] == 50.0  # final value


def test_value_at_before_start():
    s = NetworkSchedule([ScheduleAction(at_ms=100.0, rtt_ms=70.0)])
    assert s.value_at(50.0) == (None, None)


def test_value_at_exact_action_time_inclusive():
    s = NetworkSchedule(
        [
            ScheduleAction(at_ms=100.0, rtt_ms=70.0),
            ScheduleAction(at_ms=200.0, rtt_ms=90.0, loss=0.1),
        ]
    )
    assert s.value_at(100.0) == (70.0, None)  # boundary applies the action
    assert s.value_at(199.999) == (70.0, None)
    assert s.value_at(200.0) == (90.0, 0.1)


def test_value_at_empty_schedule():
    assert NetworkSchedule([]).value_at(123.0) == (None, None)


def test_value_at_carries_forward_each_dimension_independently():
    s = NetworkSchedule(
        [
            ScheduleAction(at_ms=0.0, rtt_ms=50.0),
            ScheduleAction(at_ms=10.0, loss=0.2),
            ScheduleAction(at_ms=20.0, rtt_ms=80.0),
        ]
    )
    assert s.value_at(5.0) == (50.0, None)
    assert s.value_at(15.0) == (50.0, 0.2)
    assert s.value_at(25.0) == (80.0, 0.2)


def test_install_applies_actions_at_times():
    loop = EventLoop()
    network = Network(loop, RngRegistry(1))

    class E:
        def __init__(self, name):
            self.name = name

        def deliver(self, s, p):  # pragma: no cover - not used
            pass

    for n in ("a", "b"):
        network.attach(E(n))
    uniform_topology(network, ["a", "b"], rtt_ms=10.0)

    applied = []
    s = NetworkSchedule(
        [
            ScheduleAction(at_ms=100.0, rtt_ms=40.0, label="r40"),
            ScheduleAction(at_ms=200.0, loss=0.5, label="l50"),
        ]
    )
    s.install(loop, network, on_apply=lambda a: applied.append(a.label))
    loop.run_until(150.0)
    assert network.link("a", "b").one_way_ms == 20.0
    assert network.link("a", "b").loss.rate() == 0.0
    loop.run_until(250.0)
    assert network.link("a", "b").loss.rate() == 0.5
    assert applied == ["r40", "l50"]


def test_end_ms():
    s = loss_staircase_profile(dwell_ms=1000.0)
    assert s.end_ms == 12_000.0
    assert NetworkSchedule([]).end_ms == 0.0


def test_actions_sorted_by_time():
    s = NetworkSchedule(
        [
            ScheduleAction(at_ms=200.0, rtt_ms=2.0),
            ScheduleAction(at_ms=100.0, rtt_ms=1.0),
        ]
    )
    assert [a.at_ms for a in s.actions] == [100.0, 200.0]


# -- generalized actions: per-pair and partition mutations ------------------ #


def _three_node_net():
    from repro.net.network import Network
    from repro.net.topology import uniform_topology
    from repro.sim.loop import EventLoop
    from repro.sim.rng import RngRegistry

    loop = EventLoop()
    network = Network(loop, RngRegistry(3))
    uniform_topology(network, ["a", "b", "c"], rtt_ms=100.0)
    return loop, network


def test_pair_action_targets_one_path_only():
    loop, network = _three_node_net()
    NetworkSchedule(
        [ScheduleAction(at_ms=10.0, rtt_ms=400.0, pair=("a", "b"))]
    ).install(loop, network)
    loop.run()
    assert network.link("a", "b").rtt_ms == pytest.approx(400.0)
    assert network.link("b", "a").rtt_ms == pytest.approx(400.0)
    assert network.link("a", "c").rtt_ms == pytest.approx(100.0)


def test_partition_and_heal_actions():
    loop, network = _three_node_net()
    NetworkSchedule(
        [
            ScheduleAction(at_ms=10.0, partitions=(frozenset({"a"}),)),
            ScheduleAction(at_ms=20.0, heal=True),
        ]
    ).install(loop, network)
    loop.run_until(15.0)
    assert network.partitioned("a", "b")
    loop.run_until(25.0)
    assert not network.partitioned("a", "b")


def test_pair_actions_do_not_move_the_global_value_at_line():
    sched = NetworkSchedule(
        [
            ScheduleAction(at_ms=0.0, rtt_ms=50.0),
            ScheduleAction(at_ms=10.0, rtt_ms=500.0, pair=("a", "b")),
        ]
    )
    assert sched.value_at(20.0) == (50.0, None)


def test_action_validation():
    with pytest.raises(ValueError):
        ScheduleAction(at_ms=0.0, pair=("a", "b"))  # pair with nothing to set
    with pytest.raises(ValueError):
        ScheduleAction(at_ms=0.0, partitions=(frozenset({"a"}),), heal=True)
