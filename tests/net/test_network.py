"""Network fabric: delivery, partitions, impairment control, stats."""

from typing import Any

import pytest

from repro.net.link import Link
from repro.net.loss_models import BernoulliLoss
from repro.net.network import Network
from repro.net.topology import uniform_topology
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry


class Sink:
    def __init__(self, name: str):
        self.name = name
        self.got: list[tuple[str, Any]] = []
        self.alive = True

    def deliver(self, sender: str, payload: Any) -> None:
        self.got.append((sender, payload))


@pytest.fixture
def net():
    loop = EventLoop()
    network = Network(loop, RngRegistry(1))
    a, b, c = Sink("a"), Sink("b"), Sink("c")
    for s in (a, b, c):
        network.attach(s)
    uniform_topology(network, ["a", "b", "c"], rtt_ms=10.0)
    return loop, network, a, b, c


def test_send_delivers_after_one_way_delay(net):
    loop, network, a, b, c = net
    network.send("a", "b", "hello", channel="udp")
    loop.run()
    assert b.got == [("a", "hello")]
    assert loop.now == pytest.approx(5.0, abs=0.5)


def test_broadcast_reaches_all(net):
    loop, network, a, b, c = net
    network.broadcast("a", ["b", "c"], "x", channel="tcp")
    loop.run()
    assert b.got and c.got


def test_duplicate_attach_rejected(net):
    loop, network, a, b, c = net
    with pytest.raises(ValueError):
        network.attach(Sink("a"))


def test_missing_link_raises(net):
    loop, network, a, b, c = net
    with pytest.raises(KeyError):
        network.link("a", "nope")


def test_unknown_channel_rejected(net):
    loop, network, a, b, c = net
    with pytest.raises(ValueError):
        network.send("a", "b", "x", channel="quic")


def test_partition_blocks_cross_group(net):
    loop, network, a, b, c = net
    network.set_partitions([{"a"}, {"b", "c"}])
    network.send("a", "b", "x", channel="udp")
    network.send("b", "c", "y", channel="udp")
    loop.run()
    assert b.got == []
    assert c.got == [("b", "y")]
    assert network.partition_drops == 1


def test_partition_implicit_rest_group(net):
    loop, network, a, b, c = net
    network.set_partitions([{"a"}])  # b, c form the implicit rest
    assert network.partitioned("a", "b")
    assert not network.partitioned("b", "c")


def test_partition_clear_restores(net):
    loop, network, a, b, c = net
    network.set_partitions([{"a"}, {"b"}])
    network.clear_partitions()
    network.send("a", "b", "x", channel="udp")
    loop.run()
    assert b.got == [("a", "x")]


def test_node_in_two_groups_rejected(net):
    loop, network, a, b, c = net
    with pytest.raises(ValueError):
        network.set_partitions([{"a"}, {"a", "b"}])


def test_link_down_drops(net):
    loop, network, a, b, c = net
    network.link("a", "b").up = False
    network.send("a", "b", "x", channel="udp")
    loop.run()
    assert b.got == []
    # reverse direction unaffected
    network.send("b", "a", "y", channel="udp")
    loop.run()
    assert a.got == [("b", "y")]


def test_set_rtt_symmetric(net):
    loop, network, a, b, c = net
    network.set_rtt("a", "b", 80.0)
    assert network.link("a", "b").one_way_ms == 40.0
    assert network.link("b", "a").one_way_ms == 40.0
    assert network.link("a", "c").one_way_ms == 5.0  # untouched


def test_set_all_rtt_and_loss(net):
    loop, network, a, b, c = net
    network.set_all_rtt(60.0)
    network.set_all_loss(1.0)
    for link in network.links():
        assert link.one_way_ms == 30.0
        assert link.loss.rate() == 1.0


def test_stats_counters(net):
    loop, network, a, b, c = net
    network.set_loss("a", "b", 1.0)
    network.send("a", "b", "x", channel="udp", size_bytes=100)
    network.send("a", "c", "y", channel="udp", size_bytes=50)
    loop.run()
    total = network.total_stats()
    assert total.sent == 2
    assert total.dropped == 1
    assert total.delivered == 1
    assert total.bytes_sent == 150
    assert network.link("a", "b").stats.observed_loss_rate() == 1.0


def test_delivery_to_detached_endpoint_is_noop(net):
    loop, network, a, b, c = net
    # Install a link to a name that has no endpoint.
    network.add_link(Link("a", "ghost", rng=network.rngs.stream("x")))
    network.send("a", "ghost", "x", channel="udp")
    loop.run()  # must not raise


def test_udp_send_path_matches_transport_reference(net):
    """Network.send inlines udp_transmission_plan; pin the two together.

    The inlined fast path must consume the per-link RNG stream in exactly
    the reference order (drop, delay, duplicate, duplicate-delay) and
    produce the same outcomes, or seeded experiments stop being
    reproducible.  Drive an identically-seeded twin link through
    udp_transmission_plan and compare deliveries, delays and counters.
    """
    from repro.net.loss_models import BernoulliLoss
    from repro.net.transport import udp_transmission_plan
    from repro.sim.rng import RngRegistry

    loop, network, a, b, c = net
    link = network.link("a", "b")
    link.loss = BernoulliLoss(0.3)
    link.duplicate_p = 0.4
    link.rng = RngRegistry(777).stream("pin")

    twin = Link(
        "a",
        "b",
        delay=link.delay,
        loss=BernoulliLoss(0.3),
        duplicate_p=0.4,
        rng=RngRegistry(777).stream("pin"),
    )

    deliveries: list[float] = []
    b.deliver = lambda sender, payload: deliveries.append(loop.now)  # type: ignore[method-assign]

    n_msgs = 200
    expected: list[float] = []
    for _ in range(n_msgs):
        t0 = loop.now
        network.send("a", "b", "x", channel="udp")
        plan = udp_transmission_plan(twin)
        if plan.deliver:
            expected.append(t0 + plan.delay_ms)
            expected.extend(t0 + d for d in plan.duplicates)
    loop.run()

    assert sorted(deliveries) == pytest.approx(sorted(expected))
    # Both streams must have advanced identically: next draw agrees.
    assert link.rng.random() == twin.rng.random()
    stats = link.stats
    assert stats.sent == n_msgs
    assert stats.delivered == len(expected)
    assert stats.dropped == n_msgs - (len(expected) - stats.duplicated)


def test_tcp_loss_delays_but_delivers(net):
    loop, network, a, b, c = net
    network.link("a", "b").loss = BernoulliLoss(0.9)
    network.link("a", "b").rng = network.rngs.stream("lossy")
    for _ in range(20):
        network.send("a", "b", "x", channel="tcp")
    loop.run()
    assert len(b.got) == 20  # reliable despite 90% loss


# -- partitions vs. late attachment ---------------------------------------- #


def test_attach_after_partition_joins_implicit_group(net):
    loop, network, a, b, c = net
    network.set_partitions([{"a"}, {"b"}])  # c lands in the implicit group 2
    late = Sink("d")
    network.attach(late)
    # The newcomer must behave exactly like the unlisted node "c": cut off
    # from the named groups but connected to the implicit rest group.
    assert network.partitioned("d", "a")
    assert network.partitioned("d", "b")
    assert not network.partitioned("d", "c")


def test_attach_after_partition_delivers_within_rest_group(net):
    loop, network, a, b, c = net
    network.set_partitions([{"a"}])
    late = Sink("d")
    network.attach(late)
    from repro.net.link import Link

    for src, dst in (("c", "d"), ("d", "c"), ("a", "d"), ("d", "a")):
        network.add_link(Link(src, dst))
    network.send("c", "d", "hello", channel="udp")
    network.send("a", "d", "blocked", channel="udp")
    loop.run()
    assert late.got == [("c", "hello")]
    assert network.partition_drops == 1


def test_clear_partitions_resets_late_attach_state(net):
    loop, network, a, b, c = net
    network.set_partitions([{"a"}])
    network.clear_partitions()
    late = Sink("e")
    network.attach(late)
    assert not network.partitioned("e", "a")
