"""Transport semantics: UDP loss/duplication, TCP reliability + HOL."""

import numpy as np
import pytest

from repro.net.link import Link
from repro.net.loss_models import BernoulliLoss
from repro.net.transport import (
    MAX_TCP_ATTEMPTS,
    RTO_MIN_MS,
    TcpChannelState,
    tcp_transmission_plan,
    udp_transmission_plan,
)


def make_link(loss=0.0, rtt=100.0, dup=0.0, seed=0):
    link = Link(
        "a",
        "b",
        loss=BernoulliLoss(loss),
        duplicate_p=dup,
        rng=np.random.default_rng(seed),
    )
    link.set_rtt(rtt)
    return link


def test_udp_delivers_without_loss():
    link = make_link()
    plan = udp_transmission_plan(link)
    assert plan.deliver
    assert plan.delay_ms == pytest.approx(50.0, abs=1.0)


def test_udp_drops_at_full_loss():
    link = make_link(loss=1.0)
    assert not udp_transmission_plan(link).deliver


def test_udp_duplicates():
    link = make_link(dup=1.0)
    plan = udp_transmission_plan(link)
    assert plan.deliver
    assert len(plan.duplicates) == 1


def test_udp_loss_rate_statistics():
    link = make_link(loss=0.25)
    delivered = sum(udp_transmission_plan(link).deliver for _ in range(8000))
    assert abs(delivered / 8000 - 0.75) < 0.02


def test_tcp_always_delivers():
    link = make_link(loss=0.5, seed=3)
    state = TcpChannelState()
    for _ in range(200):
        assert tcp_transmission_plan(link, state, 0.0).deliver


def test_tcp_no_loss_means_no_retransmit():
    link = make_link()
    state = TcpChannelState()
    plan = tcp_transmission_plan(link, state, 0.0)
    assert plan.retransmits == 0
    assert plan.delay_ms == pytest.approx(50.0, abs=1.0)


def test_tcp_loss_becomes_rto_delay():
    link = make_link(loss=0.5, seed=1)
    state = TcpChannelState()
    plans = [tcp_transmission_plan(link, state, float(i) * 1000.0) for i in range(300)]
    retransmitted = [p for p in plans if p.retransmits > 0]
    assert retransmitted, "with 50% loss some segments must retransmit"
    for p in retransmitted:
        assert p.delay_ms >= RTO_MIN_MS


def test_tcp_fifo_head_of_line_blocking():
    """A retransmitted segment delays the segments sent right after it."""
    link = make_link(rtt=100.0)
    state = TcpChannelState()
    # Simulate: segment 1 suffered a retransmission -> delivered late.
    state.last_delivery_ms = 500.0
    plan = tcp_transmission_plan(link, state, now_ms=100.0)
    # Raw delay would be ~50ms (deliver at 150), but FIFO pins it to 500.
    assert plan.delay_ms == pytest.approx(400.0)
    assert state.last_delivery_ms == 500.0


def test_tcp_fifo_monotone_delivery_times():
    link = make_link(loss=0.3, seed=7)
    state = TcpChannelState()
    deliveries = []
    now = 0.0
    for _ in range(500):
        plan = tcp_transmission_plan(link, state, now)
        deliveries.append(now + plan.delay_ms)
        now += 10.0
    assert deliveries == sorted(deliveries)


def test_tcp_gives_up_at_max_attempts():
    link = make_link(loss=1.0)
    state = TcpChannelState()
    plan = tcp_transmission_plan(link, state, 0.0)
    assert plan.deliver  # still delivered (bounded model)
    assert plan.retransmits == MAX_TCP_ATTEMPTS


def test_tcp_srtt_ewma():
    state = TcpChannelState()
    state.observe_rtt(100.0)
    assert state.srtt_ms == 100.0
    state.observe_rtt(200.0)
    assert state.srtt_ms == pytest.approx(112.5)


def test_tcp_rto_floor():
    state = TcpChannelState()
    assert state.rto_ms(10.0) == RTO_MIN_MS
    state.observe_rtt(300.0)
    assert state.rto_ms(10.0) == 600.0
