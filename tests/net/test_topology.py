"""Topologies: uniform mesh, AWS geo matrix, clock models."""

import numpy as np
import pytest

from repro.net.network import Network
from repro.net.topology import (
    AWS_REGIONS,
    AWS_RTT_MATRIX_MS,
    ClockModel,
    aws_geo_topology,
    region_rtt,
    uniform_topology,
)
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry


class E:
    def __init__(self, name):
        self.name = name

    def deliver(self, s, p):  # pragma: no cover
        pass


def make_net(names):
    network = Network(EventLoop(), RngRegistry(3))
    for n in names:
        network.attach(E(n))
    return network


def test_uniform_full_mesh_link_count():
    names = [f"n{i}" for i in range(5)]
    net = make_net(names)
    uniform_topology(net, names, rtt_ms=100.0)
    assert len(net.links()) == 20  # 5*4 directed


def test_uniform_rtt_setting():
    names = ["a", "b"]
    net = make_net(names)
    uniform_topology(net, names, rtt_ms=80.0, loss=0.2)
    link = net.link("a", "b")
    assert link.one_way_ms == 40.0
    assert link.loss.rate() == 0.2


def test_region_rtt_symmetric_lookup():
    assert region_rtt("tokyo", "london") == region_rtt("london", "tokyo")
    assert region_rtt("tokyo", "tokyo") == 0.0
    with pytest.raises(KeyError):
        region_rtt("tokyo", "atlantis")


def test_aws_matrix_covers_all_pairs():
    for i, a in enumerate(AWS_REGIONS):
        for b in AWS_REGIONS[i + 1 :]:
            assert region_rtt(a, b) > 0.0
    assert len(AWS_RTT_MATRIX_MS) == 10  # C(5,2)


def test_aws_topology_placement_and_rtts():
    names = [f"n{i}" for i in range(1, 6)]
    net = make_net(names)
    placement = aws_geo_topology(net, names)
    assert sorted(placement.values()) == sorted(AWS_REGIONS)
    # spot-check one pair: n1=tokyo, n2=london
    link = net.link("n1", "n2")
    assert link.rtt_ms == pytest.approx(region_rtt("tokyo", "london"))


def test_aws_topology_wraps_regions_for_large_clusters():
    names = [f"n{i}" for i in range(1, 8)]  # 7 nodes over 5 regions
    net = make_net(names)
    placement = aws_geo_topology(net, names)
    assert placement["n6"] == placement["n1"]  # wrapped
    # same-region pair gets a small but nonzero RTT
    assert net.link("n1", "n6").rtt_ms == pytest.approx(2.0)


def test_clock_synchronized_is_exact():
    clock = ClockModel.synchronized(["a", "b"])
    assert clock.read("a", 123.0) == 123.0


def test_clock_ntp_offsets_are_tens_of_ms():
    clock = ClockModel.ntp(["a", "b", "c", "d", "e"], RngRegistry(1), offset_sigma_ms=15.0)
    offsets = np.array(list(clock.offset_ms.values()))
    assert np.any(offsets != 0.0)
    assert np.all(np.abs(offsets) < 100.0)


def test_clock_ntp_offset_is_stable_per_node():
    clock = ClockModel.ntp(["a"], RngRegistry(2), read_noise_sigma_ms=0.0)
    assert clock.read("a", 100.0) - 100.0 == pytest.approx(clock.offset_ms["a"])
    assert clock.read("a", 500.0) - 500.0 == pytest.approx(clock.offset_ms["a"])


def test_clock_read_noise_varies():
    clock = ClockModel.ntp(["a"], RngRegistry(3), read_noise_sigma_ms=5.0)
    reads = {clock.read("a", 100.0) for _ in range(10)}
    assert len(reads) > 1


def test_clock_unknown_node_reads_true_time():
    clock = ClockModel.synchronized(["a"])
    assert clock.read("ghost", 50.0) == 50.0
