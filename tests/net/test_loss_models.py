"""Loss processes: rates, retargeting, burstiness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net.loss_models import BernoulliLoss, GilbertElliottLoss, NoLoss


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_no_loss_never_drops(rng):
    m = NoLoss()
    assert not any(m.should_drop(rng) for _ in range(100))
    assert m.rate() == 0.0


def test_no_loss_retarget_rejected():
    with pytest.raises(ValueError):
        NoLoss().set_rate(0.1)
    NoLoss().set_rate(0.0)  # zero is a no-op


def test_bernoulli_zero_and_one(rng):
    assert not any(BernoulliLoss(0.0).should_drop(rng) for _ in range(50))
    assert all(BernoulliLoss(1.0).should_drop(rng) for _ in range(50))


def test_bernoulli_empirical_rate(rng):
    m = BernoulliLoss(0.3)
    drops = sum(m.should_drop(rng) for _ in range(20000))
    assert abs(drops / 20000 - 0.3) < 0.02


def test_bernoulli_out_of_range_rejected():
    with pytest.raises(ValueError):
        BernoulliLoss(-0.1)
    with pytest.raises(ValueError):
        BernoulliLoss(1.1)


def test_bernoulli_set_rate(rng):
    m = BernoulliLoss(0.0)
    m.set_rate(1.0)
    assert m.should_drop(rng)
    assert m.rate() == 1.0


def test_gilbert_elliott_marginal_rate_formula():
    m = GilbertElliottLoss(p_gb=0.1, p_bg=0.4, loss_good=0.0, loss_bad=1.0)
    pi_bad = 0.1 / 0.5
    assert m.rate() == pytest.approx(pi_bad)


def test_gilbert_elliott_empirical_rate(rng):
    m = GilbertElliottLoss(p_gb=0.05, p_bg=0.45, loss_good=0.0, loss_bad=1.0)
    drops = sum(m.should_drop(rng) for _ in range(60000))
    assert abs(drops / 60000 - m.rate()) < 0.02


def test_gilbert_elliott_is_bursty(rng):
    """Consecutive-drop probability must exceed i.i.d. at the same rate."""
    m = GilbertElliottLoss(p_gb=0.02, p_bg=0.2, loss_good=0.0, loss_bad=1.0)
    seq = [m.should_drop(rng) for _ in range(60000)]
    rate = sum(seq) / len(seq)
    pairs = sum(1 for a, b in zip(seq, seq[1:]) if a and b)
    p_drop_given_drop = pairs / max(1, sum(seq[:-1]))
    assert p_drop_given_drop > 2.0 * rate


def test_gilbert_elliott_set_rate_retargets(rng):
    m = GilbertElliottLoss(p_gb=0.02, p_bg=0.2)
    m.set_rate(0.25)
    assert m.rate() == pytest.approx(0.25)
    drops = sum(m.should_drop(rng) for _ in range(60000))
    assert abs(drops / 60000 - 0.25) < 0.02


def test_gilbert_elliott_set_rate_zero(rng):
    m = GilbertElliottLoss(p_gb=0.1, p_bg=0.5)
    m.set_rate(0.0)
    assert m.rate() == 0.0
    # After leaving any initial bad state, it never drops again.
    _ = [m.should_drop(rng) for _ in range(100)]
    assert not any(m.should_drop(rng) for _ in range(1000))


def test_gilbert_elliott_unreachable_rate_rejected():
    m = GilbertElliottLoss(p_gb=0.1, p_bg=0.5, loss_good=0.1, loss_bad=0.5)
    with pytest.raises(ValueError):
        m.set_rate(0.8)


def test_gilbert_elliott_absorbing_bad_state_rejected():
    with pytest.raises(ValueError):
        GilbertElliottLoss(p_gb=0.1, p_bg=0.0)


@settings(max_examples=50)
@given(p=st.floats(min_value=0.0, max_value=1.0))
def test_bernoulli_rate_roundtrip(p):
    m = BernoulliLoss(0.5)
    m.set_rate(p)
    assert m.rate() == p


@settings(max_examples=50)
@given(target=st.floats(min_value=0.0, max_value=0.95))
def test_gilbert_elliott_rate_roundtrip(target):
    m = GilbertElliottLoss(p_gb=0.05, p_bg=0.3)
    m.set_rate(target)
    assert m.rate() == pytest.approx(target, abs=1e-9)
