"""RaftNode edge cases: stale terms, recovery, validation, metrics."""

import pytest

from repro.cluster.faults import crash, recover_node
from repro.raft.messages import (
    AppendEntriesResponse,
    HeartbeatRequest,
    HeartbeatResponse,
    VoteResponse,
)
from repro.raft.state_machine import kv_put
from repro.raft.types import Role
from tests.conftest import make_raft_cluster


def test_node_requires_self_in_peers():
    from repro.cluster.builder import ClusterConfig, build_cluster
    from repro.dynatune.policy import StaticPolicy
    from repro.raft.node import RaftNode
    from repro.raft.state_machine import KVStore
    from repro.raft.types import RaftConfig
    from repro.sim.loop import EventLoop
    from repro.sim.rng import RngRegistry
    from repro.sim.tracing import TraceLog

    loop = EventLoop()
    with pytest.raises(ValueError):
        RaftNode(
            loop=loop,
            name="nX",
            peers=["a", "b"],
            network=None,
            config=RaftConfig(),
            policy=StaticPolicy(),
            state_machine=KVStore(),
            trace=TraceLog(),
            rng=RngRegistry(1).stream("x"),
        )


def test_stale_heartbeat_answered_with_current_term():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    c.run_for(500)
    others = [n for n in c.names if n != leader]
    node, impostor = c.node(others[0]), others[1]
    term = node.current_term
    node.on_message(
        impostor,
        HeartbeatRequest(term=max(term - 1, 0), leader=impostor, commit=0),
    )
    c.run_for(100)
    assert node.leader_id == leader  # stale claimant not adopted
    assert node.current_term == term


def test_leader_steps_down_on_higher_term_heartbeat_response():
    c = make_raft_cluster(3)
    leader_name = c.run_until_leader()
    leader = c.node(leader_name)
    leader.on_message(
        "peer",
        HeartbeatResponse(term=leader.current_term + 3, follower="peer", last_log_index=0),
    )
    assert leader.role is Role.FOLLOWER
    assert leader.current_term >= 3


def test_leader_steps_down_on_higher_term_append_response():
    c = make_raft_cluster(3)
    leader_name = c.run_until_leader()
    leader = c.node(leader_name)
    leader.on_message(
        "peer",
        AppendEntriesResponse(
            term=leader.current_term + 1, follower="peer", success=False, match_index=0
        ),
    )
    assert leader.role is Role.FOLLOWER


def test_stale_vote_response_ignored():
    c = make_raft_cluster(3)
    leader_name = c.run_until_leader()
    leader = c.node(leader_name)
    term = leader.current_term
    leader.on_message("peer", VoteResponse(term=term - 1, voter="peer", granted=True))
    assert leader.role is Role.LEADER
    assert leader.current_term == term


def test_unknown_payload_type_raises():
    c = make_raft_cluster(1)
    with pytest.raises(TypeError):
        c.node("n1").on_message("x", object())


def test_crash_recovery_preserves_term_vote_and_log():
    c = make_raft_cluster(3)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    client.submit(kv_put("x", 5))
    c.run_for(2000)
    victim_name = next(n for n in c.names if n != leader)
    victim = c.node(victim_name)
    term, voted, log_len = victim.current_term, victim.voted_for, victim.log.last_index
    crash(victim)
    c.run_for(1000)
    recover_node(victim)
    assert victim.current_term == term
    assert victim.voted_for == voted
    assert victim.log.last_index == log_len
    # Volatile state reset: reapplies from scratch.
    assert victim.commit_index == 0
    c.run_for(3000)
    assert victim.state_machine.peek("x") == 5  # replayed via leader commit


def test_recovered_node_rejoins_as_follower():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    c.run_for(500)
    victim = c.node(next(n for n in c.names if n != leader))
    crash(victim)
    c.run_for(1000)
    recover_node(victim)
    c.run_for(3000)
    assert victim.role is Role.FOLLOWER
    assert victim.leader_id == c.leader()


def test_crashed_leader_replaced():
    c = make_raft_cluster(5)
    old = c.run_until_leader()
    crash(c.node(old))
    new = c.run_until_leader(exclude=old, timeout_ms=20_000)
    assert new != old


def test_heartbeat_commit_clamped_to_match_index():
    """A heartbeat can never tell a follower to commit entries it might
    not hold: commit is clamped to the leader's match_index for it."""
    c = make_raft_cluster(3)
    client = c.add_client("cl")
    leader_name = c.run_until_leader()
    c.run_for(500)
    leader = c.node(leader_name)
    lagger = next(n for n in c.names if n != leader_name)
    c.node(lagger).pause()
    for i in range(5):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(3000)
    assert leader.match_index[lagger] < leader.commit_index
    # Any heartbeat built for the lagger right now must clamp.
    commit = min(leader.commit_index, leader.match_index[lagger])
    assert commit == leader.match_index[lagger]


def test_metrics_counters_increment():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    c.run_for(2000)
    lm = c.node(leader).metrics
    assert lm.heartbeats_sent > 0
    assert lm.heartbeat_responses_received > 0
    assert lm.times_leader == 1
    f = c.node(next(n for n in c.names if n != leader)).metrics
    assert f.heartbeats_received > 0


def test_current_randomized_timeout_exposed():
    c = make_raft_cluster(3)
    c.run_until_leader()
    c.run_for(1000)
    for n in c.names:
        assert c.node(n).current_randomized_timeout_ms > 0.0


def test_single_node_commits_immediately():
    c = make_raft_cluster(1)
    client = c.add_client("cl")
    c.run_until_leader()
    client.submit(kv_put("solo", 1))
    c.run_for(1000)
    assert client.completed
    assert c.node("n1").state_machine.peek("solo") == 1
