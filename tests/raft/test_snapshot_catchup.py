"""Node-level compaction: policy triggers, snapshot transfer, durable recovery."""

from repro.raft.state_machine import kv_put
from repro.raft.types import RaftConfig
from tests.conftest import make_raft_cluster


def compaction_cluster(n=3, *, threshold=20, margin=4, **kwargs):
    return make_raft_cluster(
        n,
        raft=RaftConfig(
            compaction_threshold=threshold, compaction_retain_margin=margin
        ),
        **kwargs,
    )


def submit_and_settle(c, client, commands, settle_ms=3000):
    for cmd in commands:
        client.submit(cmd)
    c.run_for(settle_ms)


def test_compaction_triggers_and_bounds_retained_entries():
    c = compaction_cluster(threshold=20, margin=4)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    submit_and_settle(c, client, [kv_put(f"k{i}", i) for i in range(80)], settle_ms=9000)
    assert len(client.completed) == 80
    node = c.node(leader)
    assert node.metrics.compactions >= 1
    assert node.metrics.snapshots_taken >= 1
    assert node.log.first_index > 1
    assert node.snapshot is not None
    # Healthy cluster: every replica keeps up, so every replica compacts
    # and the retained window stays near threshold + margin.
    for n in c.names:
        log = c.node(n).log
        assert log.last_index - log.last_included_index <= 20 + 4 + 8
    # Compaction must not disturb replication or the applied state.
    snaps = [c.node(n).state_machine.snapshot() for n in c.names]
    assert all(s == snaps[0] for s in snaps)
    assert len(snaps[0]) == 80


def test_live_followers_never_need_snapshot_transfer():
    c = compaction_cluster(threshold=10, margin=2)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    submit_and_settle(c, client, [kv_put(f"k{i}", i) for i in range(60)], settle_ms=8000)
    # The leader never compacts past a live follower's match index, so the
    # ordinary append path always suffices.
    assert c.node(leader).metrics.snapshots_sent == 0
    for n in c.names:
        assert c.node(n).metrics.snapshots_installed == 0


def test_crashed_follower_catches_up_via_snapshot():
    c = compaction_cluster(n=5, threshold=20, margin=4)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    c.run_for(500)
    lagger = next(n for n in c.names if n != leader)
    c.node(lagger).crash()
    submit_and_settle(c, client, [kv_put(f"k{i}", i) for i in range(80)], settle_ms=9000)
    assert len(client.completed) == 80
    lead = c.node(leader)
    # The dead follower must not hold memory hostage: the leader compacts
    # past its match index while it is away.
    assert lead.log.first_index > lead.match_index[lagger] + 1
    c.node(lagger).recover()
    c.run_for(4000)
    follower = c.node(lagger)
    assert follower.metrics.snapshots_installed >= 1
    assert lead.metrics.snapshots_sent >= 1
    assert follower.state_machine.snapshot() == lead.state_machine.snapshot()
    assert follower.commit_index == lead.commit_index
    # History independence: the follower applied far fewer entries than the
    # history holds — the snapshot covered the bulk.
    assert follower.metrics.entries_applied < 40
    rec = c.trace.of_kind("snapshot_install")
    assert rec and rec[0].node == lagger


def test_recover_restores_durable_snapshot_without_full_replay():
    c = compaction_cluster(threshold=15, margin=3)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    submit_and_settle(c, client, [kv_put(f"k{i}", i) for i in range(50)], settle_ms=7000)
    follower = next(n for n in c.names if n != leader)
    node = c.node(follower)
    assert node.snapshot is not None  # followers compact too
    snap_index = node.snapshot.last_included_index
    pre_crash_state = node.state_machine.snapshot()
    node.crash()
    c.run_for(1000)
    node.recover()
    # Immediately after recovery the durable snapshot is live state: the
    # commit floor sits at the snapshot index, not 0, and the machine holds
    # the snapshot image before any entry replays.
    assert node.commit_index >= snap_index
    assert node.last_applied >= snap_index
    applied_at_recovery = node.metrics.entries_applied
    c.run_for(4000)
    assert node.state_machine.snapshot() == pre_crash_state
    # Only the tail beyond the snapshot replayed.
    assert node.metrics.entries_applied - applied_at_recovery <= 50 - snap_index + 10


def test_recover_without_snapshot_still_replays_from_scratch():
    c = make_raft_cluster(3)  # compaction disabled: the pre-compaction path
    client = c.add_client("cl")
    leader = c.run_until_leader()
    submit_and_settle(c, client, [kv_put(f"k{i}", i) for i in range(10)])
    follower = next(n for n in c.names if n != leader)
    node = c.node(follower)
    assert node.snapshot is None
    node.crash()
    c.run_for(500)
    node.recover()
    assert node.commit_index == 0  # volatile, as before compaction existed
    c.run_for(4000)
    assert node.state_machine.snapshot() == c.node(leader).state_machine.snapshot()


def test_leader_crash_recover_with_snapshot_keeps_cluster_consistent():
    c = compaction_cluster(n=5, threshold=20, margin=4)
    client = c.add_client("cl")
    old = c.run_until_leader()
    submit_and_settle(c, client, [kv_put(f"a{i}", i) for i in range(60)], settle_ms=8000)
    assert c.node(old).snapshot is not None
    c.node(old).crash()
    new = c.run_until_leader(exclude=old, timeout_ms=20_000)
    c.run_for(1000)
    c.node(old).recover()
    c.run_for(5000)
    assert c.node(old).state_machine.snapshot() == c.node(new).state_machine.snapshot()
    for i in range(60):
        assert c.node(old).state_machine.peek(f"a{i}") == i
