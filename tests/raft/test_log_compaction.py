"""RaftLog compaction: offset indexing, frontier semantics, snapshot install."""

import pytest

from repro.raft.log import LogEntry, RaftLog


def filled(n: int, term: int = 1) -> RaftLog:
    log = RaftLog()
    for i in range(n):
        log.append_new(term, f"c{i + 1}")
    return log


# --------------------------------------------------------------------- #
# compact()
# --------------------------------------------------------------------- #


def test_fresh_log_frontier_is_sentinel():
    log = RaftLog()
    assert log.first_index == 1
    assert log.last_included_index == 0
    assert log.last_included_term == 0
    assert log.term_at(0) == 0


def test_compact_moves_frontier_and_releases_entries():
    log = filled(10)
    dropped = log.compact(6)
    assert dropped == 6
    assert log.first_index == 7
    assert (log.last_included_index, log.last_included_term) == (6, 1)
    assert log.last_index == 10
    assert log.retained == len(log) == 4


def test_compact_preserves_reads_above_frontier():
    log = filled(10)
    log.compact(6)
    assert log.term_at(6) == 1  # the frontier itself is still readable
    for i in range(7, 11):
        assert log.entry_at(i).command == f"c{i}"
        assert log.term_at(i) == 1
    assert [e.index for e in log.entries()] == [7, 8, 9, 10]


def test_compact_is_idempotent_and_monotone():
    log = filled(10)
    log.compact(6)
    assert log.compact(6) == 0
    assert log.compact(3) == 0  # behind the frontier: no-op
    assert log.first_index == 7
    assert log.compact(8) == 2  # further forward works
    assert log.first_index == 9


def test_compact_past_end_rejected():
    log = filled(3)
    with pytest.raises(ValueError):
        log.compact(4)


def test_reads_below_frontier_raise():
    log = filled(10)
    log.compact(6)
    with pytest.raises(IndexError):
        log.term_at(5)
    with pytest.raises(IndexError):
        log.entry_at(6)  # the frontier entry itself is released
    with pytest.raises(IndexError):
        log.slice_from(6, 2)


def test_append_after_compact_continues_indexing():
    log = filled(5)
    log.compact(5)
    entry = log.append_new(2, "x")
    assert entry.index == 6
    assert log.last_index == 6
    assert log.last_term == 2
    assert log.slice_from(6, 10) == (entry,)


def test_last_term_of_fully_compacted_log_is_frontier_term():
    log = filled(5, term=3)
    log.compact(5)
    assert len(log) == 0
    assert log.last_term == 3
    assert log.up_to_date(5, 3)
    assert not log.up_to_date(4, 3)


# --------------------------------------------------------------------- #
# try_append across the frontier
# --------------------------------------------------------------------- #


def test_try_append_prev_below_frontier_counts_as_match():
    log = filled(8)
    log.compact(6)
    # Leader replays an old window: prev=4, entries 5..9.  Entries at or
    # below the frontier are committed state and skip; 7..8 dedup; 9 lands.
    entries = [LogEntry(term=1, index=i, command=f"c{i}") for i in range(5, 10)]
    ok, match, conflict = log.try_append(4, 1, entries)
    assert ok and conflict is None
    assert match == 9
    assert log.last_index == 9


def test_try_append_entirely_below_frontier_acks_frontier():
    log = filled(8)
    log.compact(6)
    entries = [LogEntry(term=1, index=i, command=f"c{i}") for i in range(3, 5)]
    ok, match, conflict = log.try_append(2, 1, entries)
    assert ok and conflict is None
    assert match == 6  # everything offered is already covered by the snapshot
    assert log.last_index == 8


def test_try_append_conflict_scan_stops_at_frontier():
    log = filled(6, term=2)
    log.compact(2)
    # Conflicting term at index 4: the back-off hint must not walk below
    # first_index (those terms are unknowable).
    ok, match, conflict = log.try_append(4, 9, [])
    assert not ok
    assert conflict == log.first_index  # whole retained run shares term 2


def test_try_append_conflict_truncation_with_offset():
    log = filled(6)
    log.compact(3)
    new = [LogEntry(term=2, index=5, command="n5"), LogEntry(term=2, index=6, command="n6")]
    ok, match, conflict = log.try_append(4, 1, new)
    assert ok and match == 6
    assert log.entry_at(5).term == 2
    assert log.entry_at(5).command == "n5"
    assert log.last_index == 6


# --------------------------------------------------------------------- #
# install_snapshot()
# --------------------------------------------------------------------- #


def test_install_snapshot_replaces_short_log():
    log = filled(3)
    assert log.install_snapshot(10, 4)
    assert log.last_index == 10
    assert (log.last_included_index, log.last_included_term) == (10, 4)
    assert len(log) == 0
    assert log.last_term == 4


def test_install_snapshot_retains_matching_suffix():
    log = filled(8)
    assert log.install_snapshot(5, 1)  # we hold (5, term 1): prefix swap only
    assert log.first_index == 6
    assert log.last_index == 8
    assert [e.index for e in log.entries()] == [6, 7, 8]


def test_install_snapshot_discards_conflicting_suffix():
    log = filled(8, term=1)
    assert log.install_snapshot(5, 2)  # our entry 5 has term 1: wipe
    assert log.last_index == 5
    assert len(log) == 0
    assert log.last_term == 2


def test_stale_install_snapshot_is_ignored():
    log = filled(8)
    log.compact(6)
    assert not log.install_snapshot(4, 1)
    assert log.first_index == 7
    assert log.last_index == 8
