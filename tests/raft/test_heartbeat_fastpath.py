"""Heartbeat send-path caching: shared immutable requests must be correct.

The leader re-sends one cached ``HeartbeatRequest`` object per follower
while ``(term, commit)`` hold and no metadata is attached, and a follower
re-uses one cached ``HeartbeatResponse`` while ``(term, last_log_index)``
hold.  These tests pin the invalidation rules and that the caches can
never leak across reigns.
"""

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.dynatune.policy import DynatunePolicy
from repro.experiments.common import make_policy_factory
from repro.raft.messages import HeartbeatRequest
from repro.raft.state_machine import kv_put
from tests.conftest import make_raft_cluster


def test_static_policy_heartbeats_are_cached_per_peer():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    c.run_for(2_000.0)
    node = c.node(leader)
    cached = dict(node._hb_cache)
    assert set(cached) == set(node.peers)
    for peer, req in cached.items():
        assert isinstance(req, HeartbeatRequest)
        assert req.term == node.current_term
        assert req.meta is None
    c.run_for(1_000.0)
    # Steady state: same immutable objects are still being re-sent.
    for peer in node.peers:
        assert node._hb_cache[peer] is cached[peer]


def test_cached_heartbeat_invalidated_when_commit_advances():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    c.run_for(2_000.0)
    node = c.node(leader)
    peer = node.peers[0]
    before = node._hb_cache[peer]
    client = c.add_client("cli")
    client.submit(kv_put("k", "v"))
    c.run_for(3_000.0)
    assert node.commit_index > before.commit
    after = node._hb_cache[peer]
    assert after is not before
    assert after.commit == min(node.commit_index, node.match_index[peer])


def test_caches_cleared_on_step_down_and_new_reign():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    c.run_for(1_000.0)
    node = c.node(leader)
    assert node._hb_cache
    node._become_follower(node.current_term + 5, None)
    assert node._hb_cache == {}
    assert node._hb_timers == {}


def test_dynatune_heartbeats_always_carry_fresh_meta():
    cluster = build_cluster(
        ClusterConfig(n_nodes=3, seed=5, rtt_ms=50.0),
        lambda name: DynatunePolicy(),
    )
    cluster.start()
    leader = cluster.run_until_leader()
    cluster.run_for(2_000.0)
    node = cluster.node(leader)
    # Metadata-bearing heartbeats must never come from the cache: the
    # cache only serves meta-None requests.
    assert node._hb_cache == {}
    # And the sequence spaces actually advanced per peer.
    pol = node.policy
    for peer in node.peers:
        assert pol._paths[peer].next_seq > 5


def test_follower_response_cache_tracks_log_growth():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    c.run_for(2_000.0)
    follower = next(n for n in c.nodes.values() if n.name != leader)
    resp = follower._hb_resp_cache
    assert resp is not None
    assert resp.term == follower.current_term
    assert resp.last_log_index == follower.log.last_index
    client = c.add_client("cli")
    client.submit(kv_put("a", "1"))
    c.run_for(3_000.0)
    resp2 = follower._hb_resp_cache
    assert resp2 is not resp
    assert resp2.last_log_index == follower.log.last_index > resp.last_log_index


def test_metrics_count_commit_advances_under_load():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    client = c.add_client("cli")
    for i in range(5):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(5_000.0)
    node = c.node(leader)
    assert node.metrics.commit_advances >= 1
    assert node.commit_index >= 5
