"""KVStore determinism and command semantics."""

import pytest

from repro.raft.state_machine import KVCommand, KVStore, kv_delete, kv_get, kv_put


def test_put_and_get():
    kv = KVStore()
    assert kv.apply(kv_put("a", 1)) == 1
    assert kv.apply(kv_get("a")) == 1


def test_get_missing_returns_none():
    assert KVStore().apply(kv_get("nope")) is None


def test_delete_returns_old_value():
    kv = KVStore()
    kv.apply(kv_put("a", 1))
    assert kv.apply(kv_delete("a")) == 1
    assert kv.apply(kv_get("a")) is None
    assert kv.apply(kv_delete("a")) is None


def test_noop_command_is_ignored():
    kv = KVStore()
    assert kv.apply(None) is None
    assert kv.applied_count == 0


def test_applied_count_tracks_real_commands():
    kv = KVStore()
    kv.apply(kv_put("a", 1))
    kv.apply(kv_get("a"))
    assert kv.applied_count == 2


def test_unknown_type_rejected():
    with pytest.raises(TypeError):
        KVStore().apply(object())


def test_unknown_op_rejected():
    with pytest.raises(ValueError):
        KVStore().apply(KVCommand(op="increment", key="a"))


def test_reset_clears():
    kv = KVStore()
    kv.apply(kv_put("a", 1))
    kv.reset()
    assert len(kv) == 0
    assert kv.applied_count == 0


def test_determinism_same_sequence_same_state():
    cmds = [kv_put("a", 1), kv_put("b", 2), kv_delete("a"), kv_put("b", 3)]
    kv1, kv2 = KVStore(), KVStore()
    r1 = [kv1.apply(c) for c in cmds]
    r2 = [kv2.apply(c) for c in cmds]
    assert r1 == r2
    assert kv1.snapshot() == kv2.snapshot() == {"b": 3}


def test_peek_does_not_mutate():
    kv = KVStore()
    kv.apply(kv_put("a", 1))
    assert kv.peek("a") == 1
    assert kv.applied_count == 1
