"""RaftLog: indexing, conflict truncation, voter rule — unit + properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.raft.log import LogEntry, RaftLog


def entries(*terms, start=1):
    return tuple(
        LogEntry(term=t, index=start + i, command=f"c{start + i}")
        for i, t in enumerate(terms)
    )


def filled(*terms):
    log = RaftLog()
    ok, match, _ = log.try_append(0, 0, entries(*terms))
    assert ok and match == len(terms)
    return log


# -- basics ------------------------------------------------------------- #


def test_empty_log():
    log = RaftLog()
    assert len(log) == 0
    assert log.last_index == 0
    assert log.last_term == 0
    assert log.term_at(0) == 0


def test_append_new_assigns_indices():
    log = RaftLog()
    e1 = log.append_new(1, "a")
    e2 = log.append_new(1, "b")
    assert (e1.index, e2.index) == (1, 2)
    assert log.last_index == 2


def test_append_new_term_regression_rejected():
    log = filled(2)
    with pytest.raises(ValueError):
        log.append_new(1, "x")


def test_term_at_bounds():
    log = filled(1, 2)
    assert log.term_at(1) == 1
    assert log.term_at(2) == 2
    with pytest.raises(IndexError):
        log.term_at(3)
    with pytest.raises(IndexError):
        log.term_at(-1)


def test_entry_at():
    log = filled(1, 1)
    assert log.entry_at(2).command == "c2"
    with pytest.raises(IndexError):
        log.entry_at(0)


def test_slice_from():
    log = filled(1, 1, 2, 2)
    got = log.slice_from(2, 2)
    assert [e.index for e in got] == [2, 3]
    assert log.slice_from(5, 10) == ()
    with pytest.raises(IndexError):
        log.slice_from(0, 1)


# -- try_append: the AppendEntries receiver rules ------------------------ #


def test_append_to_empty_log():
    log = RaftLog()
    ok, match, conflict = log.try_append(0, 0, entries(1, 1))
    assert ok and match == 2 and conflict is None


def test_append_empty_entries_is_heartbeat_like_probe():
    log = filled(1, 1)
    ok, match, _ = log.try_append(2, 1, ())
    assert ok and match == 2


def test_append_rejects_when_log_too_short():
    log = filled(1)
    ok, match, conflict = log.try_append(5, 1, entries(1, start=6))
    assert not ok
    assert conflict == 2  # retry from just past our end


def test_append_rejects_on_prev_term_mismatch_with_conflict_hint():
    log = filled(1, 2, 2, 2)
    ok, _, conflict = log.try_append(4, 3, entries(3, start=5))
    assert not ok
    assert conflict == 2  # first index of conflicting term 2


def test_append_truncates_conflicting_suffix():
    log = filled(1, 1, 2, 2)
    # Leader says index 2 should be term 3: truncate 2..4, append new.
    ok, match, _ = log.try_append(1, 1, entries(3, 3, start=2))
    assert ok and match == 3
    assert log.last_index == 3
    assert [log.term_at(i) for i in (1, 2, 3)] == [1, 3, 3]


def test_append_idempotent_for_duplicate_entries():
    log = filled(1, 1)
    before = log.entries()
    ok, match, _ = log.try_append(0, 0, entries(1, 1))
    assert ok and match == 2
    assert log.entries() == before


def test_append_partial_overlap_extends():
    log = filled(1, 1)
    ok, match, _ = log.try_append(1, 1, entries(1, 1, start=2))
    assert ok and match == 3
    assert log.last_index == 3


def test_append_non_contiguous_batch_rejected():
    log = RaftLog()
    bad = (LogEntry(term=1, index=5, command="x"),)
    with pytest.raises(ValueError):
        log.try_append(0, 0, bad)


# -- voter rule (§5.4.1) -------------------------------------------------- #


def test_up_to_date_by_term():
    log = filled(1, 2)
    assert log.up_to_date(1, 3)  # higher last term wins, even shorter
    assert not log.up_to_date(10, 1)  # lower last term loses, even longer


def test_up_to_date_by_length_at_equal_term():
    log = filled(1, 2, 2)
    assert log.up_to_date(3, 2)
    assert log.up_to_date(4, 2)
    assert not log.up_to_date(2, 2)


def test_empty_log_votes_for_anyone():
    log = RaftLog()
    assert log.up_to_date(0, 0)


# -- properties ------------------------------------------------------------ #


term_lists = st.lists(st.integers(min_value=1, max_value=5), min_size=0, max_size=30).map(
    lambda ts: sorted(ts)  # term monotonicity
)


@settings(max_examples=200)
@given(terms=term_lists)
def test_terms_monotone_after_fill(terms):
    log = RaftLog()
    log.try_append(0, 0, entries(*terms))
    got = [log.term_at(i) for i in range(1, log.last_index + 1)]
    assert got == sorted(got)


@settings(max_examples=200)
@given(a=term_lists, b=term_lists)
def test_try_append_from_matching_prefix_always_converges(a, b):
    """Replaying a leader log over any follower log from a true matching
    prefix ends with the follower log equal to the leader's."""
    leader = RaftLog()
    leader_entries = entries(*b)
    leader.try_append(0, 0, leader_entries)

    follower = RaftLog()
    follower.try_append(0, 0, entries(*a))

    # Find the longest true matching prefix.
    prefix = 0
    while (
        prefix < min(leader.last_index, follower.last_index)
        and leader.term_at(prefix + 1) == follower.term_at(prefix + 1)
    ):
        prefix += 1
    ok, match, _ = follower.try_append(
        prefix, leader.term_at(prefix), leader_entries[prefix:]
    )
    assert ok
    assert match == leader.last_index
    assert follower.entries()[: leader.last_index] == leader.entries()


@settings(max_examples=100)
@given(terms=term_lists)
def test_conflict_hint_points_at_first_index_of_conflicting_term(terms):
    if not terms:
        return
    log = RaftLog()
    log.try_append(0, 0, entries(*terms))
    last = log.last_index
    wrong_term = log.term_at(last) + 1
    ok, _, conflict = log.try_append(last, wrong_term, ())
    assert not ok
    assert conflict is not None
    assert 1 <= conflict <= last
    # Everything from conflict..last has the same (conflicting) term.
    t = log.term_at(last)
    assert all(log.term_at(i) == t for i in range(conflict, last + 1))
    assert conflict == 1 or log.term_at(conflict - 1) != t
