"""Property-based safety checks under randomized fault schedules.

These tests drive a full cluster through randomized sequences of pauses,
crashes, partitions and client writes, then assert the Raft safety
invariants over the entire trace:

* **Election safety** — at most one leader per term;
* **Log matching** — all committed prefixes identical across nodes;
* **Leader completeness** — every entry committed in an earlier term is
  present in every later leader's log;
* **State-machine safety** — replicas that applied an index applied the
  same command at it.

Hypothesis generates the fault schedule; the simulation itself stays
deterministic given (seed, schedule), so every failure is replayable.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.dynatune.policy import DynatunePolicy, StaticPolicy
from repro.raft.state_machine import kv_put
from repro.scenarios.library import build_scenario, scenario_names
from repro.scenarios.safety import SafetyChecker
from repro.sim.process import ProcessState


@dataclasses.dataclass(frozen=True)
class Fault:
    at_ms: float
    kind: str  # pause / crash / partition / heal / write
    target: int  # node index (or #writes for 'write')
    duration_ms: float


fault_strategy = st.builds(
    Fault,
    at_ms=st.floats(min_value=100.0, max_value=20_000.0),
    kind=st.sampled_from(["pause", "crash", "partition", "heal", "write"]),
    target=st.integers(min_value=0, max_value=4),
    duration_ms=st.floats(min_value=500.0, max_value=8_000.0),
)


def run_scenario(seed: int, faults: list[Fault], policy: str = "static") -> object:
    policy_factory = (
        (lambda name: StaticPolicy(300.0, 50.0))
        if policy == "static"
        else (lambda name: DynatunePolicy())
    )
    cluster = build_cluster(
        ClusterConfig(n_nodes=5, seed=seed, rtt_ms=20.0), policy_factory
    )
    client = cluster.add_client("cl", retry_timeout_ms=400.0)
    client.max_retries = 200
    cluster.start()
    writes = [0]

    for fault in sorted(faults, key=lambda f: f.at_ms):
        def apply(fault=fault):
            node = cluster.node(cluster.names[fault.target % 5])
            if fault.kind == "pause" and node.state is ProcessState.RUNNING:
                node.pause()
                cluster.loop.schedule(
                    fault.duration_ms,
                    lambda: node.resume()
                    if node.state is ProcessState.PAUSED
                    else None,
                )
            elif fault.kind == "crash" and node.state is ProcessState.RUNNING:
                node.crash()
                cluster.loop.schedule(
                    fault.duration_ms,
                    lambda: node.recover()
                    if node.state is ProcessState.CRASHED
                    else None,
                )
            elif fault.kind == "partition":
                k = fault.target % 4 + 1
                cluster.network.set_partitions(
                    [set(cluster.names[:k]), set(cluster.names[k:])]
                )
                cluster.loop.schedule(
                    fault.duration_ms, cluster.network.clear_partitions
                )
            elif fault.kind == "heal":
                cluster.network.clear_partitions()
            elif fault.kind == "write":
                writes[0] += 1
                client.submit(kv_put(f"w{writes[0]}", writes[0]))

        cluster.loop.schedule_at(fault.at_ms, apply)

    cluster.network.clear_partitions()
    cluster.run_until(30_000.0)
    # Heal everything and let the cluster converge.
    cluster.network.clear_partitions()
    for node in cluster.nodes.values():
        if node.state is ProcessState.PAUSED:
            node.resume()
        elif node.state is ProcessState.CRASHED:
            node.recover()
    cluster.run_until(55_000.0)
    return cluster


def assert_invariants(cluster) -> None:
    # Election safety: at most one leader per term, and no violation trace.
    by_term: dict[int, set[str]] = {}
    for rec in cluster.trace.of_kind("become_leader"):
        by_term.setdefault(rec.get("term"), set()).add(rec.node)
    for term, nodes in by_term.items():
        assert len(nodes) == 1, f"election safety violated in term {term}: {nodes}"
    assert not cluster.trace.of_kind("safety_violation_two_leaders")

    # Log matching on the committed prefix.
    commit = min(n.commit_index for n in cluster.nodes.values())
    reference = cluster.node(cluster.names[0]).log
    for name in cluster.names[1:]:
        log = cluster.node(name).log
        for i in range(1, commit + 1):
            assert log.entry_at(i) == reference.entry_at(i), (
                f"log matching violated at index {i} on {name}"
            )

    # Leader completeness: after convergence a current leader's log holds
    # every globally committed entry.
    leader = cluster.leader()
    if leader is not None:
        max_commit = max(n.commit_index for n in cluster.nodes.values())
        assert cluster.node(leader).log.last_index >= max_commit

    # State-machine safety: applied prefixes agree.
    min_applied = min(n.last_applied for n in cluster.nodes.values())
    snaps = []
    for name in cluster.names:
        node = cluster.node(name)
        if node.last_applied == min_applied:
            snaps.append(node.state_machine.snapshot())
    # (snapshots at equal applied index must be equal)
    for s in snaps[1:]:
        assert s == snaps[0]


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    faults=st.lists(fault_strategy, min_size=0, max_size=10),
)
def test_static_policy_safety_under_random_faults(seed, faults):
    cluster = run_scenario(seed, faults, policy="static")
    assert_invariants(cluster)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    faults=st.lists(fault_strategy, min_size=0, max_size=8),
)
def test_dynatune_policy_safety_under_random_faults(seed, faults):
    """Dynatune must not weaken any Raft safety property (§III-A claims
    the assumptions and guarantees are unchanged)."""
    cluster = run_scenario(seed, faults, policy="dynatune")
    assert_invariants(cluster)


def test_liveness_after_arbitrary_fault_storm():
    """After every fault heals, a leader exists and writes commit."""
    faults = [
        Fault(at_ms=1000.0 * i, kind=k, target=i % 5, duration_ms=2000.0)
        for i, k in enumerate(
            ["pause", "partition", "crash", "write", "pause", "heal", "write"]
        )
    ]
    cluster = run_scenario(99, faults, policy="static")
    leader = cluster.run_until_leader(timeout_ms=30_000)
    assert leader is not None


# -- scenario-library safety: every canonical timeline, both policies ------- #
#
# The library scenarios are the *adversarial* histories (splits, heals,
# flapping links, leader churn) — exactly where at-most-one-leader-per-term,
# committed-entry preservation and commit monotonicity must be re-proven.


def run_library_scenario(name: str, policy: str, *, seed: int = 31):
    policy_factory = (
        (lambda n: StaticPolicy(300.0, 50.0))
        if policy == "static"
        else (lambda n: DynatunePolicy())
    )
    cluster = build_cluster(
        ClusterConfig(n_nodes=5, seed=seed, rtt_ms=40.0), policy_factory
    )
    scenario = build_scenario(name, cluster.names)
    checker = SafetyChecker(cluster, interval_ms=250.0)
    checker.install()
    scenario.install(cluster)
    client = cluster.add_client("cl", retry_timeout_ms=400.0)
    client.max_retries = 200
    writes = [0]

    def _write() -> None:
        writes[0] += 1
        client.submit(kv_put(f"w{writes[0]}", writes[0]))
        cluster.loop.schedule(1_500.0, _write)

    cluster.loop.schedule(700.0, _write)
    cluster.start()
    # Run through the scenario plus a heal/convergence tail.
    cluster.run_until(scenario.end_ms + 10_000.0)
    return cluster, checker


@pytest.mark.parametrize("name", scenario_names())
@pytest.mark.parametrize("policy", ["static", "dynatune"])
def test_library_scenarios_preserve_safety(name, policy):
    cluster, checker = run_library_scenario(name, policy)
    checker.assert_safe()
    assert_invariants(cluster)
    # The run must have exercised the log, or the checks prove nothing.
    assert max(n.commit_index for n in cluster.nodes.values()) > 0
