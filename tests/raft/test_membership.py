"""Membership: config algebra, one-at-a-time proposals, lifecycle edges."""

import pytest

from repro.raft.membership import ClusterConfig, ConfigChange, quorums_overlap
from repro.raft.state_machine import kv_put
from repro.raft.types import RaftConfig
from repro.scenarios.safety import SafetyChecker
from tests.conftest import make_raft_cluster


# --------------------------------------------------------------------- #
# config algebra
# --------------------------------------------------------------------- #


def test_config_is_sorted_and_content_hashed():
    a = ClusterConfig(voters=("n3", "n1", "n2"))
    b = ClusterConfig(voters=("n1", "n2", "n3"))
    assert a == b
    assert a.voters == ("n1", "n2", "n3")
    assert a.quorum == 2


def test_config_rejects_duplicates_and_voter_learner_overlap():
    with pytest.raises(ValueError):
        ClusterConfig(voters=("n1", "n1"))
    with pytest.raises(ValueError):
        ClusterConfig(voters=("n1",), learners=("n1",))


def test_learner_lifecycle():
    cfg = ClusterConfig(voters=("n1", "n2", "n3"))
    grown = cfg.with_learner("n4")
    assert grown.is_learner("n4") and not grown.is_voter("n4")
    assert grown.quorum == cfg.quorum  # learners change no quorum
    promoted = grown.with_promoted("n4")
    assert promoted.is_voter("n4")
    assert promoted.quorum == 3
    shrunk = promoted.without("n1")
    assert "n1" not in shrunk
    assert shrunk.quorum == 2


def test_derivation_rejects_invalid_transitions():
    cfg = ClusterConfig(voters=("n1", "n2"), learners=("n3",))
    with pytest.raises(ValueError):
        cfg.with_learner("n1")  # double add of a voter
    with pytest.raises(ValueError):
        cfg.with_learner("n3")  # double add of a learner
    with pytest.raises(ValueError):
        cfg.with_promoted("n1")  # promoting a non-learner
    with pytest.raises(ValueError):
        cfg.without("n9")  # removing a stranger


def test_config_change_round_trips_and_validates_kind():
    cfg = ClusterConfig(voters=("n1", "n2"), learners=("n3",))
    change = ConfigChange(kind="promote", node="n3", config=cfg)
    assert ConfigChange.from_dict(change.to_dict()) == change
    with pytest.raises(ValueError):
        ConfigChange(kind="swap", node="n3", config=cfg)


def test_quorums_overlap_is_the_one_at_a_time_guarantee():
    base = {"n1", "n2", "n3"}
    assert quorums_overlap(base, base | {"n4"})
    assert quorums_overlap(base | {"n4"}, base)
    # Two-at-a-time is exactly what breaks it: majorities of {1..5} and
    # {1..3} can be disjoint only after dropping two voters at once.
    assert not quorums_overlap({"n1", "n2", "n3", "n4", "n5"}, {"n1", "n2", "n3"})
    assert quorums_overlap(set(), base)  # bootstrap transition is safe


# --------------------------------------------------------------------- #
# proposal gates
# --------------------------------------------------------------------- #


def test_double_add_is_rejected():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    node = c.node(leader)
    assert not node.propose_config_change("add_learner", "n2")
    assert node.metrics.config_changes_rejected == 1
    rejected = c.trace.of_kind("config_rejected")
    assert rejected and rejected[-1].get("target") == "n2"


def test_only_one_change_in_flight():
    c = make_raft_cluster(5)
    leader = c.run_until_leader()
    node = c.node(leader)
    followers = [n for n in c.names if n != leader]
    assert node.propose_config_change("remove", followers[0])
    # Second proposal before the first commits: rejected, not queued.
    assert node.config_change_in_flight()
    assert not node.propose_config_change("remove", followers[1])
    c.run_for(3_000)
    # Once committed, the gate reopens.
    assert not node.config_change_in_flight()
    assert node.propose_config_change("remove", followers[1])


def test_followers_reject_proposals():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    follower = next(n for n in c.names if n != leader)
    assert not c.node(follower).propose_config_change("remove", leader)


# --------------------------------------------------------------------- #
# lifecycle edges
# --------------------------------------------------------------------- #


def test_leader_steps_down_after_committing_own_removal():
    c = make_raft_cluster(3)
    c.enable_membership()
    checker = SafetyChecker(c)
    checker.install(event_hooks=True)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    assert c.node(leader).propose_config_change("remove", leader)
    c.run_for(6_000)
    # The deposed leader is decommissioned and a survivor leads.
    assert leader not in c.members()
    new_leader = c.leader()
    assert new_leader is not None and new_leader != leader
    # The two-node remainder still commits client work.
    client.submit(kv_put("after", 1))
    c.run_for(2_000)
    assert len(client.completed) == 1
    checker.assert_safe()


def test_leader_removed_mid_replication_loses_nothing():
    c = make_raft_cluster(5)
    c.enable_membership()
    checker = SafetyChecker(c)
    checker.install(event_hooks=True)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    for i in range(30):
        client.submit(kv_put(f"k{i}", i))
    # Propose the leader's own removal while those entries are in flight.
    assert c.node(leader).propose_config_change("remove", leader)
    c.run_for(8_000)
    assert leader not in c.members()
    assert len(client.completed) == 30
    snaps = [c.node(n).state_machine.snapshot() for n in c.members()]
    assert all(s == snaps[0] for s in snaps)
    checker.assert_safe()


def test_add_while_learner_snapshot_in_flight():
    c = make_raft_cluster(
        3, raft=RaftConfig(compaction_threshold=20, compaction_retain_margin=4)
    )
    checker = SafetyChecker(c)
    checker.install(event_hooks=True)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    for i in range(60):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(6_000)
    assert c.node(leader).metrics.compactions >= 1
    # First joiner: its catch-up must go through InstallSnapshot.
    c.spawn_node("n4")
    assert c.node(leader).propose_config_change("add_learner", "n4")
    c.run_for(400)  # the add commits; the snapshot transfer is still young
    c.spawn_node("n5")
    assert c.node(c.leader()).propose_config_change("add_learner", "n5")
    c.run_for(8_000)
    voters = c.node(c.leader()).membership.voters
    assert "n4" in voters and "n5" in voters
    assert c.node("n4").metrics.snapshots_installed >= 1
    assert c.node("n5").metrics.snapshots_installed >= 1
    checker.assert_safe()


def test_crash_recover_preserves_committed_config():
    c = make_raft_cluster(
        3, raft=RaftConfig(compaction_threshold=20, compaction_retain_margin=4)
    )
    client = c.add_client("cl")
    leader = c.run_until_leader()
    c.spawn_node("n4")
    assert c.node(leader).propose_config_change("add_learner", "n4")
    c.run_for(4_000)
    assert "n4" in c.node(leader).membership.voters  # auto-promoted
    # Bury the config entries under the compaction frontier, then bounce a
    # follower: the durable snapshot must restore the committed config.
    for i in range(60):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(6_000)
    follower = next(n for n in c.members() if n != c.leader() and n != "n4")
    node = c.node(follower)
    assert node.log.last_included_index > 0
    node.crash()
    c.run_for(1_000)
    node.recover()
    c.run_for(3_000)
    assert "n4" in node.membership.voters
    assert node.membership == c.node(c.leader()).membership


def test_uncommitted_config_entry_survives_crash_until_overwritten():
    c = make_raft_cluster(5)
    leader = c.run_until_leader()
    node = c.node(leader)
    # Cut the leader off so its config entry can never commit.
    c.network.set_partitions([{leader}])
    assert node.propose_config_change("remove", "n5" if leader != "n5" else "n4")
    target = node.membership
    node.crash()
    c.run_for(50)
    node.recover()
    # Applied-at-append must survive the crash: the durable log still
    # holds the uncommitted entry, so the rebuilt config matches.
    assert node.membership == target
    # Healed, the new leader's log overwrites the orphan entry and the
    # node falls back to the committed five-voter config.
    c.network.clear_partitions()
    c.run_for(6_000)
    assert len(node.membership.voters) == 5
    configs = {c.node(n).membership for n in c.names}
    assert len(configs) == 1
