"""RaftClient behaviour: redirects, retries, giveup, latency accounting."""

from repro.raft.state_machine import kv_put
from tests.conftest import make_raft_cluster


def test_client_follows_redirect_to_leader():
    c = make_raft_cluster(5)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    client.submit(kv_put("x", 1))
    c.run_for(3000)
    assert len(client.completed) == 1
    assert client._contact == leader


def test_client_latency_reasonable():
    c = make_raft_cluster(3, rtt_ms=20.0)
    client = c.add_client("cl")
    c.run_until_leader()
    client.submit(kv_put("x", 1))
    c.run_for(3000)
    done = client.completed[0]
    # one hop to contact (+ maybe redirect) + replication round trip
    assert 20.0 <= done.latency_ms <= 200.0


def test_client_rotates_contacts_when_cluster_down():
    c = make_raft_cluster(3)
    client = c.add_client("cl", retry_timeout_ms=200.0)
    c.run_until_leader()
    for n in c.names:
        c.node(n).pause()
    client.submit(kv_put("x", 1))
    c.run_for(3000)
    assert client.completed == []
    assert client.inflight_count == 1  # still trying


def test_client_gives_up_after_max_retries():
    c = make_raft_cluster(3)
    client = c.add_client("cl", retry_timeout_ms=100.0)
    client.max_retries = 3
    c.run_until_leader()
    for n in c.names:
        c.node(n).pause()
    rid = client.submit(kv_put("x", 1))
    c.run_for(5000)
    assert client.failed == [rid]
    assert client.inflight_count == 0


def test_client_mean_latency_empty_is_zero():
    c = make_raft_cluster(1)
    client = c.add_client("cl")
    assert client.mean_latency_ms() == 0.0


def test_on_complete_callback_invoked():
    c = make_raft_cluster(3)
    client = c.add_client("cl")
    c.run_until_leader()
    seen = []
    client.submit(kv_put("x", 1), on_complete=lambda done: seen.append(done.request_id))
    c.run_for(3000)
    assert seen == [0]


def test_completed_request_records_command_and_retries():
    c = make_raft_cluster(3)
    client = c.add_client("cl")
    c.run_until_leader()
    client.submit(kv_put("key", "val"))
    c.run_for(3000)
    done = client.completed[0]
    assert done.command.key == "key"
    assert done.retries >= 0
    assert done.completed_ms > done.submitted_ms


# --------------------------------------------------------------------- #
# retry/redirect under partition, and the at-most-once fuzz-client mode
# --------------------------------------------------------------------- #


def test_redirect_records_single_completed_history_op():
    from repro.fuzz.history import OpHistory

    c = make_raft_cluster(5)
    history = OpHistory()
    client = c.add_client("cl", history=history)
    leader = c.run_until_leader()
    follower = next(n for n in c.names if n != leader)
    client._contact = follower  # force the redirect path
    client.submit(kv_put("x", 1))
    c.run_for(3_000.0)
    assert len(client.completed) == 1
    ops = history.ops()
    assert len(ops) == 1 and ops[0].completed
    assert ops[0].op == "put" and ops[0].key == "x" and ops[0].result == 1
    assert client._contact == leader


def test_retry_rides_out_leader_partition():
    from repro.fuzz.history import OpHistory

    c = make_raft_cluster(5, seed=3)
    history = OpHistory()
    client = c.add_client("cl", retry_timeout_ms=300.0, history=history)
    leader = c.run_until_leader()
    client._contact = leader
    # Island the leader: the client (implicit partition group) stays with
    # the majority, but its believed contact is now unreachable.
    c.network.set_partitions([{leader}])
    client.submit(kv_put("x", 1))
    c.run_for(8_000.0)
    assert len(client.completed) == 1
    done = client.completed[0]
    assert done.retries >= 1  # at least one timeout-driven rotation
    assert client._contact != leader
    assert history.ops()[0].completed


def test_at_most_once_client_abandons_instead_of_resending():
    from repro.fuzz.history import OpHistory

    c = make_raft_cluster(3)
    history = OpHistory()
    client = c.add_client(
        "cl", retry_timeout_ms=300.0, history=history, resubmit_on_timeout=False
    )
    c.run_until_leader()
    # Cut the client off from the whole cluster: the listed group holds
    # every node, the client lands alone in the implicit group.
    c.network.set_partitions([set(c.names)])
    client.submit(kv_put("x", 1))
    c.run_for(5_000.0)
    assert client.completed == [] and client.failed == []
    assert client.inflight_count == 1  # open, never retransmitted
    assert len(c.trace.of_kind("client_abandon")) == 1
    ops = history.ops()
    assert len(ops) == 1 and not ops[0].completed


def test_abandoned_op_completed_by_late_response():
    from repro.fuzz.history import OpHistory

    c = make_raft_cluster(3, rtt_ms=20.0)
    history = OpHistory()
    # Client->server RTT far above the abandon timeout: every answer is
    # "late", arriving only after the client has given the op up.
    client = c.add_client(
        "cl",
        rtt_ms=800.0,
        retry_timeout_ms=300.0,
        history=history,
        resubmit_on_timeout=False,
    )
    leader = c.run_until_leader()
    client._contact = leader
    client.submit(kv_put("x", 1))
    c.run_for(5_000.0)
    assert len(c.trace.of_kind("client_abandon")) == 1
    assert len(client.completed) == 1  # the late answer still lands
    ops = history.ops()
    assert ops[0].completed and ops[0].return_ms > ops[0].invoke_ms + 300.0


def test_at_most_once_still_follows_redirects():
    from repro.fuzz.history import OpHistory

    c = make_raft_cluster(5)
    history = OpHistory()
    client = c.add_client("cl", history=history, resubmit_on_timeout=False)
    leader = c.run_until_leader()
    c.run_for(500.0)  # let followers observe the leader (hints need it)
    follower = next(n for n in c.names if n != leader)
    client._contact = follower
    client.submit(kv_put("x", 1))
    c.run_for(3_000.0)
    # A redirect proves the first copy was never appended, so resending
    # is safe even in at-most-once mode.
    assert len(client.completed) == 1
    assert history.ops()[0].completed


# --------------------------------------------------------------------- #
# regression tests: redirect give-up trace, bogus hints, rotation skew
# --------------------------------------------------------------------- #


def test_redirect_giveup_emits_trace_and_abandons_history():
    # Exhausting max_retries on the *redirect* path must account the
    # failure exactly like the timeout path: trace + history abandon.
    from repro.fuzz.history import OpHistory

    c = make_raft_cluster(5)
    history = OpHistory()
    client = c.add_client("cl", history=history)
    client.max_retries = 0
    leader = c.run_until_leader()
    c.run_for(500.0)  # followers must know the leader to emit hints
    follower = next(n for n in c.names if n != leader)
    client._contact = follower
    rid = client.submit(kv_put("x", 1))
    c.run_for(3_000.0)
    assert client.failed == [rid]
    assert len(c.trace.of_kind("client_giveup")) == 1
    ops = history.ops()
    assert len(ops) == 1 and not ops[0].completed


def test_redirect_with_unknown_leader_hint_falls_back_to_rotation():
    # A hint naming a server outside the rotation (e.g. a removed member
    # the responder has not unlearned) must not strand the client.
    from repro.raft.messages import ClientResponse

    c = make_raft_cluster(3)
    client = c.add_client("cl")
    c.run_until_leader()
    rid = client.submit(kv_put("x", 1))
    client._on_response(ClientResponse(request_id=rid, ok=False, leader_hint="ghost"))
    assert client._contact in client.cluster
    assert client._contact == client.cluster[1]  # round-robin advanced
    c.run_for(3_000.0)
    assert len(client.completed) == 1  # the request still completes


def test_forget_server_preserves_rotation_position():
    # Removing an entry below the rotation pointer used to leave the
    # pointer indexing one server further along, skipping a live one.
    c = make_raft_cluster(5)
    client = c.add_client("cl")
    pointed = client.cluster[2]
    client._rr = 2
    client.forget_server(client.cluster[0])
    assert client.cluster[client._rr] == pointed


def test_forget_server_at_rotation_index_moves_to_successor():
    c = make_raft_cluster(3)
    client = c.add_client("cl")
    names = list(client.cluster)
    client._rr = 1
    client.forget_server(names[1])
    assert client.cluster[client._rr] == names[2]


def test_forget_server_above_rotation_index_is_unaffected():
    c = make_raft_cluster(4)
    client = c.add_client("cl")
    pointed = client.cluster[1]
    client._rr = 1
    client.forget_server(client.cluster[3])
    assert client.cluster[client._rr] == pointed


def test_forget_server_rotation_walk_visits_every_survivor():
    # Deterministic rotation check: after any single removal, one full
    # walk of the rotation visits each surviving server exactly once.
    c = make_raft_cluster(5)
    for start_rr in range(5):
        for removed_idx in range(5):
            client = c.add_client(f"cl-{start_rr}-{removed_idx}")
            client._rr = start_rr
            survivors = set(client.cluster) - {client.cluster[removed_idx]}
            client.forget_server(client.cluster[removed_idx])
            seen = []
            for _ in range(len(client.cluster)):
                seen.append(client.cluster[client._rr])
                client._rr = (client._rr + 1) % len(client.cluster)
            assert set(seen) == survivors and len(seen) == len(survivors)
