"""RaftClient behaviour: redirects, retries, giveup, latency accounting."""

from repro.raft.state_machine import kv_put
from tests.conftest import make_raft_cluster


def test_client_follows_redirect_to_leader():
    c = make_raft_cluster(5)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    client.submit(kv_put("x", 1))
    c.run_for(3000)
    assert len(client.completed) == 1
    assert client._contact == leader


def test_client_latency_reasonable():
    c = make_raft_cluster(3, rtt_ms=20.0)
    client = c.add_client("cl")
    c.run_until_leader()
    client.submit(kv_put("x", 1))
    c.run_for(3000)
    done = client.completed[0]
    # one hop to contact (+ maybe redirect) + replication round trip
    assert 20.0 <= done.latency_ms <= 200.0


def test_client_rotates_contacts_when_cluster_down():
    c = make_raft_cluster(3)
    client = c.add_client("cl", retry_timeout_ms=200.0)
    c.run_until_leader()
    for n in c.names:
        c.node(n).pause()
    client.submit(kv_put("x", 1))
    c.run_for(3000)
    assert client.completed == []
    assert client.inflight_count == 1  # still trying


def test_client_gives_up_after_max_retries():
    c = make_raft_cluster(3)
    client = c.add_client("cl", retry_timeout_ms=100.0)
    client.max_retries = 3
    c.run_until_leader()
    for n in c.names:
        c.node(n).pause()
    rid = client.submit(kv_put("x", 1))
    c.run_for(5000)
    assert client.failed == [rid]
    assert client.inflight_count == 0


def test_client_mean_latency_empty_is_zero():
    c = make_raft_cluster(1)
    client = c.add_client("cl")
    assert client.mean_latency_ms() == 0.0


def test_on_complete_callback_invoked():
    c = make_raft_cluster(3)
    client = c.add_client("cl")
    c.run_until_leader()
    seen = []
    client.submit(kv_put("x", 1), on_complete=lambda done: seen.append(done.request_id))
    c.run_for(3000)
    assert seen == [0]


def test_completed_request_records_command_and_retries():
    c = make_raft_cluster(3)
    client = c.add_client("cl")
    c.run_until_leader()
    client.submit(kv_put("key", "val"))
    c.run_for(3000)
    done = client.completed[0]
    assert done.command.key == "key"
    assert done.retries >= 0
    assert done.completed_ms > done.submitted_ms
