"""Log replication: commit, apply, catch-up, conflict resolution."""

from repro.cluster.faults import pause_for
from repro.raft.state_machine import kv_get, kv_put
from tests.conftest import make_raft_cluster


def submit_and_settle(c, client, commands, settle_ms=3000):
    for cmd in commands:
        client.submit(cmd)
    c.run_for(settle_ms)


def test_put_commits_on_all_replicas():
    c = make_raft_cluster(3)
    client = c.add_client("cl")
    c.run_until_leader()
    submit_and_settle(c, client, [kv_put("x", 42)])
    assert len(client.completed) == 1
    for n in c.names:
        assert c.node(n).state_machine.peek("x") == 42


def test_linearizable_get_through_log():
    c = make_raft_cluster(3)
    client = c.add_client("cl")
    c.run_until_leader()
    submit_and_settle(c, client, [kv_put("x", 1)])
    client.submit(kv_get("x"))
    c.run_for(2000)
    get = [r for r in client.completed if getattr(r.command, "op", None) == "get"]
    assert get[0].result == 1


def test_many_concurrent_requests_all_commit():
    c = make_raft_cluster(5)
    client = c.add_client("cl")
    c.run_until_leader()
    submit_and_settle(c, client, [kv_put(f"k{i}", i) for i in range(50)], settle_ms=8000)
    assert len(client.completed) == 50
    assert client.failed == []
    snaps = [c.node(n).state_machine.snapshot() for n in c.names]
    assert all(s == snaps[0] for s in snaps)
    assert len(snaps[0]) == 50


def test_commit_index_agrees_across_replicas():
    c = make_raft_cluster(3)
    client = c.add_client("cl")
    c.run_until_leader()
    submit_and_settle(c, client, [kv_put(f"k{i}", i) for i in range(10)])
    commits = {c.node(n).commit_index for n in c.names}
    assert len(commits) == 1


def test_leader_noop_entry_appended_on_election():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    c.run_for(1000)
    log = c.node(leader).log
    assert log.last_index >= 1
    assert log.entry_at(1).command is None  # the no-op


def test_follower_catches_up_after_pause():
    c = make_raft_cluster(5)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    c.run_for(500)
    lagger = next(n for n in c.names if n != leader)
    c.node(lagger).pause()
    submit_and_settle(c, client, [kv_put(f"k{i}", i) for i in range(20)], settle_ms=5000)
    assert len(client.completed) == 20  # majority commits without the lagger
    assert c.node(lagger).state_machine.snapshot() == {}
    c.node(lagger).resume()
    c.run_for(5000)
    assert c.node(lagger).state_machine.snapshot() == c.node(leader).state_machine.snapshot()
    assert c.node(lagger).commit_index == c.node(leader).commit_index


def test_commits_survive_leader_failover():
    c = make_raft_cluster(5)
    client = c.add_client("cl")
    old = c.run_until_leader()
    submit_and_settle(c, client, [kv_put(f"a{i}", i) for i in range(10)], settle_ms=4000)
    assert len(client.completed) == 10
    pause_for(c.loop, c.node(old), 8_000.0)
    new = c.run_until_leader(exclude=old, timeout_ms=20_000)
    c.run_for(2000)
    # Everything committed under the old leader is present under the new.
    snap = c.node(new).state_machine.snapshot()
    for i in range(10):
        assert snap[f"a{i}"] == i


def test_writes_continue_after_failover():
    c = make_raft_cluster(5)
    client = c.add_client("cl", retry_timeout_ms=500.0)
    old = c.run_until_leader()
    submit_and_settle(c, client, [kv_put("before", 1)])
    pause_for(c.loop, c.node(old), 10_000.0)
    c.run_until_leader(exclude=old, timeout_ms=20_000)
    submit_and_settle(c, client, [kv_put("after", 2)], settle_ms=5000)
    assert {r.command.key for r in client.completed} == {"before", "after"}
    c.run_for(8000)  # old leader rejoins
    assert c.node(old).state_machine.peek("after") == 2


def test_uncommitted_minority_entries_are_overwritten():
    """Entries replicated only to a minority are discarded when a new
    leader (elected by the majority) overwrites them — §5.3 conflict rule.
    """
    c = make_raft_cluster(5)
    client = c.add_client("cl", retry_timeout_ms=400.0)
    # The client must not re-propose after the heal, or the new leader
    # would (correctly!) commit a fresh copy — here we watch the *original*
    # minority entry get overwritten.
    client.max_retries = 1
    old = c.run_until_leader()
    c.run_for(500)
    followers = [n for n in c.names if n != old]
    # Leader + one follower in the minority: new entries reach only them.
    minority = {old, followers[0], "cl"}
    c.network.set_partitions([minority, set(followers[1:])])
    doomed = client.submit(kv_put("doomed", 666))
    c.run_for(1_500)

    def holds_doomed(name):
        log = c.node(name).log
        return any(
            getattr(e.command, "key", None) == "doomed" for e in log.entries()
        )

    assert holds_doomed(old)  # appended in the minority...
    assert not holds_doomed(followers[1])  # ...but never reached the majority
    new = c.run_until_leader(exclude=old, timeout_ms=20_000)
    assert new in followers[1:]
    c.network.clear_partitions()
    c.run_for(6_000)
    # The doomed entry must be gone everywhere — log and state machine.
    for n in c.names:
        assert c.node(n).state_machine.peek("doomed") is None
        assert not holds_doomed(n)
    assert doomed not in [r.request_id for r in client.completed]


def test_log_matching_committed_prefix_identical():
    c = make_raft_cluster(5)
    client = c.add_client("cl")
    c.run_until_leader()
    submit_and_settle(c, client, [kv_put(f"k{i}", i) for i in range(15)], settle_ms=5000)
    commit = min(c.node(n).commit_index for n in c.names)
    reference = c.node(c.names[0]).log
    for n in c.names[1:]:
        log = c.node(n).log
        for i in range(1, commit + 1):
            assert log.entry_at(i) == reference.entry_at(i)


def test_duplicate_client_submission_is_at_least_once():
    """The client retries on silence; a put applied twice is idempotent at
    the KV level (documented at-least-once semantics)."""
    c = make_raft_cluster(3)
    client = c.add_client("cl", retry_timeout_ms=300.0)
    c.run_until_leader()
    client.submit(kv_put("x", 9))
    c.run_for(4000)
    assert client.completed and client.completed[0].result == 9
    assert c.node(c.names[0]).state_machine.peek("x") == 9
