"""Pre-vote and lease protection — the mechanisms behind Fig. 6b."""

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.dynatune.policy import StaticPolicy
from repro.raft.messages import VoteRequest
from repro.raft.types import RaftConfig, Role


def make_cluster(prevote=True, check_quorum=True, n=5, seed=5):
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=n,
            seed=seed,
            rtt_ms=20.0,
            raft=RaftConfig(prevote=prevote, check_quorum=check_quorum),
        ),
        lambda name: StaticPolicy(election_timeout_ms=300.0, heartbeat_interval_ms=50.0),
    )
    cluster.start()
    return cluster


def test_prevote_does_not_bump_term():
    """An isolated follower keeps pre-voting without inflating its term."""
    c = make_cluster()
    leader = c.run_until_leader()
    c.run_for(500)
    victim = next(n for n in c.names if n != leader)
    term_before = c.node(victim).current_term
    c.network.set_partitions([{victim}, set(c.names) - {victim}])
    c.run_for(10_000)
    # The victim suspects the leader but cannot win a pre-vote, so its term
    # must not grow (that is the whole point of the pre-vote phase).
    assert c.node(victim).current_term == term_before
    assert c.node(victim).metrics.prevote_rounds > 0
    assert c.node(victim).metrics.elections_started == 0


def test_without_prevote_isolated_node_inflates_term():
    c = make_cluster(prevote=False, check_quorum=False)
    leader = c.run_until_leader()
    c.run_for(500)
    victim = next(n for n in c.names if n != leader)
    term_before = c.node(victim).current_term
    c.network.set_partitions([{victim}, set(c.names) - {victim}])
    c.run_for(10_000)
    assert c.node(victim).current_term > term_before + 3


def test_rejoining_prevoter_does_not_disrupt_leader():
    """With pre-vote, the healed node falls back in line without deposing
    the leader — without it (and without leases), rejoin forces turnover."""
    c = make_cluster()
    leader = c.run_until_leader()
    c.run_for(500)
    victim = next(n for n in c.names if n != leader)
    c.network.set_partitions([{victim}, set(c.names) - {victim}])
    c.run_for(10_000)
    term_during = c.node(leader).current_term
    c.network.clear_partitions()
    c.run_for(5_000)
    assert c.leader() == leader
    assert c.node(leader).current_term == term_during
    assert c.node(victim).leader_id == leader


def test_lease_rejects_votes_while_leader_alive():
    """A higher-term VoteRequest is refused — and the term NOT adopted —
    by a follower with a fresh leader lease (etcd's inLease rule)."""
    c = make_cluster()
    leader = c.run_until_leader()
    c.run_for(2_000)
    others = [n for n in c.names if n != leader]
    voter, intruder = c.node(others[0]), others[1]
    term_before = voter.current_term
    voter.on_message(
        intruder,
        VoteRequest(
            term=term_before + 10,
            candidate=intruder,
            last_log_index=10_000,
            last_log_term=term_before + 10,
        ),
    )
    assert voter.current_term == term_before  # term NOT adopted
    assert voter.voted_for != intruder
    assert voter.metrics.votes_rejected >= 1


def test_vote_granted_once_lease_expired():
    c = make_cluster()
    leader = c.run_until_leader()
    c.run_for(500)
    others = [n for n in c.names if n != leader]
    voter_name, intruder = others[0], others[1]
    voter = c.node(voter_name)
    # Cut the voter off so its lease lapses, then ask again.
    c.network.set_partitions([{voter_name}, set(c.names) - {voter_name}])
    c.run_for(2_000)
    term = voter.current_term
    voter.on_message(
        intruder,
        VoteRequest(
            term=term + 10,
            candidate=intruder,
            last_log_index=10_000,
            last_log_term=term + 10,
        ),
    )
    assert voter.current_term == term + 10
    assert voter.voted_for == intruder


def test_prevote_aborts_when_leader_heartbeat_arrives():
    """A follower that spuriously times out reverts on the next heartbeat
    instead of electing — the Fig. 6b save."""
    c = make_cluster()
    leader = c.run_until_leader()
    c.run_for(1_000)
    victim_name = next(n for n in c.names if n != leader)
    victim = c.node(victim_name)
    # Force a false detection: fire the election timer by hand.
    victim._on_election_timeout()
    assert victim.role is Role.PRECANDIDATE
    c.run_for(2_000)
    assert victim.role is Role.FOLLOWER
    assert victim.leader_id == leader
    assert victim.metrics.elections_started == 0
    assert c.leader() == leader


def test_quorum_check_steps_leader_down_when_isolated():
    c = make_cluster()
    leader = c.run_until_leader()
    c.run_for(500)
    c.network.set_partitions([{leader}, set(c.names) - {leader}])
    c.run_for(10_000)
    # It relinquished leadership (it may since cycle follower/precandidate
    # as its own election timer expires in isolation).
    assert c.node(leader).role is not Role.LEADER
    assert c.node(leader).metrics.quorum_step_downs >= 1


def test_without_quorum_check_isolated_leader_lingers():
    c = make_cluster(check_quorum=False)
    leader = c.run_until_leader()
    c.run_for(500)
    c.network.set_partitions([{leader}, set(c.names) - {leader}])
    c.run_for(10_000)
    # Nobody tells it otherwise: it still believes it leads (stale reads
    # hazard etcd's CheckQuorum exists to bound).
    assert c.node(leader).role is Role.LEADER


def test_prevote_response_rejection_with_higher_term_steps_down():
    """A pre-candidate that discovers a higher term reverts to follower."""
    c = make_cluster()
    leader = c.run_until_leader()
    c.run_for(500)
    victim_name = next(n for n in c.names if n != leader)
    victim = c.node(victim_name)
    from repro.raft.messages import PreVoteResponse

    victim._on_election_timeout()
    assert victim.role is Role.PRECANDIDATE
    victim.on_message(
        "peer",
        PreVoteResponse(term=victim.current_term + 5, voter="peer", granted=False),
    )
    assert victim.role is Role.FOLLOWER
    assert victim.current_term >= 5
