"""Client-serving fast path: batching, pipelining, ReadIndex/lease reads.

Every knob here defaults off; these tests opt in per-cluster and check
both the mechanics (windows, probes, flush points) and the client-visible
guarantees (nothing lost across leader changes, no stale reads).
"""

from repro.dynatune.config import DynatuneConfig
from repro.dynatune.metadata import HeartbeatResponseMeta
from repro.dynatune.policy import DynatunePolicy, StaticPolicy
from repro.raft.state_machine import kv_get, kv_put
from repro.raft.types import RaftConfig
from tests.conftest import make_raft_cluster

# --------------------------------------------------------------------- #
# leader-side append batching
# --------------------------------------------------------------------- #


def test_batching_completes_all_commands():
    c = make_raft_cluster(
        5, raft=RaftConfig(client_batching=True, client_batch_window_ms=5.0)
    )
    clients = [c.add_client(f"cl{i}") for i in range(8)]
    leader = c.run_until_leader()
    c.run_for(500.0)
    for i, client in enumerate(clients):
        for j in range(8):
            client.submit(kv_put(f"k{i}", j))
    c.run_for(3_000.0)
    assert all(len(cl.completed) == 8 for cl in clients)
    m = c.node(leader).metrics
    assert m.batched_commands == 64
    assert m.batches_flushed >= 1
    # Batching is the point: far fewer than one flush per command.
    assert m.batches_flushed <= 16


def test_batching_sends_fewer_appends_than_unbatched():
    def run(batching: bool) -> int:
        c = make_raft_cluster(
            5,
            raft=RaftConfig(
                client_batching=batching, client_batch_window_ms=5.0
            ),
        )
        clients = [c.add_client(f"cl{i}") for i in range(8)]
        leader = c.run_until_leader()
        c.run_for(500.0)
        base = c.node(leader).metrics.appends_sent
        for i, client in enumerate(clients):
            for j in range(8):
                client.submit(kv_put(f"k{i}", j))
        c.run_for(3_000.0)
        assert all(len(cl.completed) == 8 for cl in clients)
        return c.node(leader).metrics.appends_sent - base

    batched = run(True)
    unbatched = run(False)
    assert batched * 2 < unbatched


def test_batch_max_forces_immediate_flush():
    c = make_raft_cluster(
        3,
        raft=RaftConfig(
            client_batching=True,
            client_batch_max=4,
            client_batch_window_ms=10_000.0,  # timer would never fire in time
        ),
    )
    client = c.add_client("cl")
    leader = c.run_until_leader()
    c.run_for(500.0)
    node = c.node(leader)
    # Deliver 4 commands in one event-loop instant: batch_max flushes
    # without waiting for the window timer or the next beat.
    from repro.raft.messages import ClientRequest

    for rid in range(4):
        node.deliver("cl", ClientRequest(request_id=rid, command=kv_put("x", rid)))
    assert node.metrics.batches_flushed == 1
    assert node.metrics.batched_commands == 4
    assert node._batch_buf == []
    client.submit(kv_put("y", 1))
    c.run_for(2_000.0)
    assert node.state_machine.peek("x") == 3


def test_buffered_commands_survive_leader_change():
    # Commands buffered (or pending) at the moment the leader falls away
    # must fail back to the client and complete via retry at the new
    # leader — never silently vanish.
    c = make_raft_cluster(
        5,
        seed=7,
        raft=RaftConfig(client_batching=True, client_batch_window_ms=5.0),
    )
    client = c.add_client("cl", retry_timeout_ms=300.0)
    leader = c.run_until_leader()
    c.run_for(500.0)
    client._contact = leader
    for j in range(5):
        client.submit(kv_put("k", j))
    # Cut the leader (and the in-flight batch machinery) off immediately.
    c.network.set_partitions([{leader}])
    c.run_for(8_000.0)
    assert len(client.completed) == 5
    new_leader = c.leader()
    assert new_leader is not None and new_leader != leader
    # The five retried writes reach the new leader concurrently, so any
    # of them may apply last — but all five must have been applied.
    assert c.node(new_leader).state_machine.peek("k") in range(5)
    assert c.node(new_leader).state_machine.applied_count >= 5


# --------------------------------------------------------------------- #
# replication pipelining
# --------------------------------------------------------------------- #


def test_pipelining_streams_multiple_windows_at_once():
    c = make_raft_cluster(3, raft=RaftConfig(replication_pipelining=True))
    leader = c.run_until_leader()
    c.run_for(500.0)
    node = c.node(leader)
    peer = node.peers[0]
    for j in range(200):
        node.log.append_new(node.current_term, kv_put("x", j))
    node._send_append(peer)
    # 200 entries / 64-entry windows: the whole backlog streams out
    # immediately instead of one-window-per-ack.
    assert node._inflight_appends[peer] == 4
    c.run_for(2_000.0)
    assert c.node(peer).log.last_index == node.log.last_index
    assert node.commit_index == node.log.last_index


def test_unpipelined_sends_single_window():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    c.run_for(500.0)
    node = c.node(leader)
    peer = node.peers[0]
    for j in range(200):
        node.log.append_new(node.current_term, kv_put("x", j))
    node._send_append(peer)
    assert node._inflight_appends[peer] == 1
    c.run_for(2_000.0)
    assert c.node(peer).log.last_index == node.log.last_index


def test_pipelining_recovers_after_rejection():
    # A follower that was cut off rejoins behind the stream: the leader's
    # optimistic next_index gets rejected, probe mode re-anchors it, and
    # the follower still converges.
    c = make_raft_cluster(3, raft=RaftConfig(replication_pipelining=True))
    client = c.add_client("cl")
    leader = c.run_until_leader()
    c.run_for(500.0)
    lagging = c.node(leader).peers[0]
    c.network.set_partitions([(set(c.names) - {lagging}) | {"cl"}])
    for j in range(30):
        client.submit(kv_put("x", j))
    c.run_for(6_000.0)
    assert len(client.completed) == 30
    c.network.set_partitions([])
    c.run_for(3_000.0)
    node = c.node(leader)
    assert c.node(lagging).log.last_index == node.log.last_index
    # Concurrent retried writes apply in an arbitrary (but agreed) order.
    assert c.node(lagging).state_machine.peek("x") == node.state_machine.peek("x")
    assert node._append_probe == set()  # probe mode exited after re-anchor


def test_pipelining_falls_back_to_snapshot_transfer():
    # When the lagging follower's entries are compacted away, the pipeline
    # must hand off to InstallSnapshot instead of spinning on appends.
    c = make_raft_cluster(
        3,
        raft=RaftConfig(
            replication_pipelining=True,
            compaction_threshold=20,
            compaction_retain_margin=5,
        ),
    )
    client = c.add_client("cl")
    leader = c.run_until_leader()
    c.run_for(500.0)
    lagging = c.node(leader).peers[0]
    c.network.set_partitions([(set(c.names) - {lagging}) | {"cl"}])
    for j in range(80):
        client.submit(kv_put(f"x{j}", j))
    c.run_for(6_000.0)
    assert len(client.completed) == 80
    node = c.node(leader)
    assert node.log.first_index > 1  # compaction actually ran
    c.network.set_partitions([])
    c.run_for(4_000.0)
    assert node.metrics.snapshots_sent >= 1
    assert c.node(lagging).metrics.snapshots_installed >= 1
    assert c.node(lagging).state_machine.peek("x79") == 79


def test_pipelining_with_batching_under_load():
    c = make_raft_cluster(
        5,
        raft=RaftConfig(
            client_batching=True,
            client_batch_window_ms=2.0,
            replication_pipelining=True,
        ),
    )
    clients = [c.add_client(f"cl{i}") for i in range(4)]
    c.run_until_leader()
    c.run_for(500.0)
    for i, client in enumerate(clients):
        for j in range(25):
            client.submit(kv_put(f"k{i}", j))
    c.run_for(5_000.0)
    assert all(len(cl.completed) == 25 for cl in clients)
    leader = c.leader()
    node = c.node(leader)
    assert node.commit_index == node.log.last_index


# --------------------------------------------------------------------- #
# ReadIndex fast path
# --------------------------------------------------------------------- #


def test_readindex_serves_without_log_entry():
    c = make_raft_cluster(5)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    c.run_for(500.0)
    client.submit(kv_put("x", 41))
    c.run_for(2_000.0)
    node = c.node(leader)
    before = node.log.last_index
    client.submit(kv_get("x"), read=True)
    c.run_for(2_000.0)
    assert len(client.completed) == 2
    assert client.completed[1].result == 41
    assert node.log.last_index == before  # no entry appended for the read
    assert node.metrics.reads_served_readindex >= 1
    assert node.metrics.read_probes_sent >= 1


def test_readindex_redirects_from_follower():
    c = make_raft_cluster(5)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    c.run_for(500.0)
    client.submit(kv_put("x", 7))
    c.run_for(2_000.0)
    follower = next(n for n in c.names if n != leader)
    client._contact = follower
    client.submit(kv_get("x"), read=True)
    c.run_for(2_000.0)
    assert client.completed[-1].result == 7
    assert c.node(follower).metrics.client_redirects >= 1


def test_readindex_blocks_in_minority_partition():
    # A deposed-but-unaware leader must never serve a fast-path read: with
    # no quorum reachable the probe round cannot confirm, so the read
    # blocks until the client reaches the real leader — and then reflects
    # the newer write, not the stale state.
    c = make_raft_cluster(5, seed=11)
    reader = c.add_client("cl", retry_timeout_ms=400.0)
    writer = c.add_client("cl2")
    old_leader = c.run_until_leader()
    c.run_for(500.0)
    writer.submit(kv_put("x", 1))
    c.run_for(2_000.0)
    # Island the old leader together with the reading client.
    c.network.set_partitions([{old_leader, "cl"}])
    c.run_for(2_000.0)
    new_leader = c.leader()
    assert new_leader is not None and new_leader != old_leader
    writer.submit(kv_put("x", 2))
    c.run_for(2_000.0)
    assert c.node(new_leader).state_machine.peek("x") == 2
    reader._contact = old_leader
    reader.submit(kv_get("x"), read=True)
    c.run_for(1_000.0)
    # Still partitioned: the read must not have produced a (stale) answer.
    assert reader.completed == []
    c.network.set_partitions([])
    c.run_for(5_000.0)
    assert len(reader.completed) == 1
    assert reader.completed[0].result == 2  # linearizable: sees the write


def test_reads_flushed_on_step_down():
    # Reads pending in a round (or buffered for the next) fail back to
    # the client when leadership is torn down, like buffered writes.
    c = make_raft_cluster(5, seed=11)
    reader = c.add_client("cl", retry_timeout_ms=400.0)
    old_leader = c.run_until_leader()
    c.run_for(500.0)
    c.network.set_partitions([{old_leader, "cl"}])
    reader._contact = old_leader
    reader.submit(kv_get("x"), read=True)
    c.run_for(4_000.0)  # check-quorum tears the old leader down
    node = c.node(old_leader)
    assert node.role.value != "leader"
    assert node.metrics.reads_failed >= 1
    assert node._read_round is None and node._read_buf == []


# --------------------------------------------------------------------- #
# leader-lease reads
# --------------------------------------------------------------------- #


def test_lease_reads_skip_probe_round():
    c = make_raft_cluster(5, raft=RaftConfig(lease_reads=True))
    client = c.add_client("cl")
    leader = c.run_until_leader()
    c.run_for(500.0)
    client.submit(kv_put("x", 5))
    c.run_for(2_000.0)
    client.submit(kv_get("x"), read=True)
    c.run_for(2_000.0)
    assert client.completed[-1].result == 5
    node = c.node(leader)
    assert node.metrics.reads_served_lease >= 1
    assert node.metrics.read_probes_sent == 0  # lease made the round moot


def test_lease_invalid_when_responses_stale():
    c = make_raft_cluster(5, raft=RaftConfig(lease_reads=True))
    leader = c.run_until_leader()
    c.run_for(500.0)
    node = c.node(leader)
    assert node._lease_valid_for_reads()
    # Age every voter response beyond any plausible lease duration.
    for p in list(node._last_peer_response):
        node._last_peer_response[p] -= 10_000.0
    assert not node._lease_valid_for_reads()


def test_lease_requires_check_quorum():
    # Without check-quorum, voters never refuse rivals, so the lease has
    # no exclusivity to stand on and must report invalid.
    c = make_raft_cluster(
        5, raft=RaftConfig(lease_reads=True, check_quorum=False)
    )
    leader = c.run_until_leader()
    c.run_for(500.0)
    assert not c.node(leader)._lease_valid_for_reads()


def test_lease_fallback_serves_via_readindex():
    # An oversized drift margin kills the lease; reads must still be
    # served — through the ReadIndex round — and count the fallback.
    c = make_raft_cluster(
        5,
        raft=RaftConfig(lease_reads=True, lease_drift_margin_ms=1e9),
    )
    client = c.add_client("cl")
    leader = c.run_until_leader()
    c.run_for(500.0)
    client.submit(kv_put("x", 9))
    c.run_for(2_000.0)
    client.submit(kv_get("x"), read=True)
    c.run_for(2_000.0)
    assert client.completed[-1].result == 9
    node = c.node(leader)
    assert node.metrics.lease_fallbacks >= 1
    assert node.metrics.reads_served_readindex >= 1
    assert len(c.trace.of_kind("lease_fallback")) >= 1


def test_static_policy_lease_bound_is_et():
    assert StaticPolicy(300.0, 50.0).lease_bound_ms() == 300.0


def test_dynatune_lease_bound_requires_every_path_tuned():
    # The first-tune cliff: an untuned follower's *default* Et says
    # nothing about the (much shorter) Et it may adopt the moment its
    # measurement window fills, so the bound must stay None until every
    # path has reported a tuned value — and revert to None on fallback.
    p = DynatunePolicy(DynatuneConfig())
    assert p.lease_bound_ms() is None  # fresh leader: no paths yet
    p.heartbeat_meta("f1", 0.0)
    p.heartbeat_meta("f2", 0.0)
    p.on_heartbeat_response("f1", HeartbeatResponseMeta(1, 0.0, None, 120.0), 10.0)
    assert p.lease_bound_ms() is None  # f2 still on its default
    p.on_heartbeat_response("f2", HeartbeatResponseMeta(1, 0.0, None, 90.0), 10.0)
    assert p.lease_bound_ms() == 90.0  # min across tuned paths
    p.on_heartbeat_response("f1", HeartbeatResponseMeta(2, 5.0, None, None), 20.0)
    assert p.lease_bound_ms() is None  # f1 fell back to the default
