"""CommitTracker: incremental quorum-match vs the seed sorted() oracle.

The seed ``_advance_commit`` sorted every match index (plus the leader's
own last index) on every response and took the quorum-th largest.  The
tracker must agree with that oracle over arbitrary match progressions —
including leader changes (full reset) and interleaved per-follower
advancement — while doing O(1) amortized work per acknowledged entry.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raft.commit import CommitTracker


def oracle_candidate(matches: dict[str, int], last_index: int, quorum: int) -> int:
    """The seed implementation: sort all matches, take the quorum-th."""
    ranked = sorted(list(matches.values()) + [last_index], reverse=True)
    return ranked[quorum - 1]


def test_validates_acks_needed():
    with pytest.raises(ValueError):
        CommitTracker(-1)


def test_single_follower_cluster_of_three():
    # n=3: quorum 2, one follower ack commits.
    t = CommitTracker(1)
    assert t.advance(0, 5) == 5
    assert t.advance(5, 7) == 7
    assert t.frontier == 7


def test_needs_quorum_minus_one_distinct_acks():
    # n=5: quorum 3 -> 2 follower acks per index.
    t = CommitTracker(2)
    assert t.advance(0, 10) == 0  # one follower alone commits nothing
    assert t.advance(0, 4) == 4  # second follower: min(10, 4)
    assert t.advance(4, 12) == 10  # now min(10, 12)


def test_discard_through_keeps_frontier_correct():
    t = CommitTracker(2)
    t.advance(0, 5)
    t.advance(0, 5)
    assert t.frontier == 5
    t.discard_through(5)
    assert t.pending == 0
    # Progress past the discarded region still counts correctly.
    t.advance(5, 8)
    assert t.frontier == 5
    t.advance(5, 9)
    assert t.frontier == 8


def test_acks_needed_zero_returns_frontier_unchanged():
    # Degenerate single-voter case: callers use last_index directly.
    t = CommitTracker(0)
    assert t.advance(0, 100) == 0


def test_stale_or_equal_match_is_a_noop():
    t = CommitTracker(1)
    t.advance(0, 5)
    assert t.advance(5, 5) == 5
    assert t.advance(5, 3) == 5  # defensive: regression reported as no-op
    assert t.pending == 5


@settings(max_examples=200, deadline=None)
@given(
    n_nodes=st.sampled_from([3, 5, 7, 9]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_events=st.integers(min_value=1, max_value=120),
)
def test_agrees_with_sorted_oracle_over_random_histories(n_nodes, seed, n_events):
    """Random interleavings of per-follower progress + leader changes."""
    rng = np.random.default_rng(seed)
    quorum = n_nodes // 2 + 1
    followers = [f"f{i}" for i in range(n_nodes - 1)]

    def fresh():
        return CommitTracker(quorum - 1), {f: 0 for f in followers}

    tracker, matches = fresh()
    last_index = 0
    commit = 0
    for _ in range(n_events):
        ev = rng.integers(0, 10)
        if ev == 0:
            # Leader change: new reign, everything resets (the node builds
            # a fresh tracker and zeroes match_index in _become_leader).
            tracker, matches = fresh()
            # The new leader's log keeps growing from wherever it was.
            last_index += int(rng.integers(0, 3))
            commit = 0
            continue
        if ev == 1:
            last_index += int(rng.integers(1, 6))  # client appends
            continue
        f = followers[int(rng.integers(0, len(followers)))]
        if matches[f] >= last_index:
            continue
        new = int(rng.integers(matches[f] + 1, last_index + 1))
        old = matches[f]
        matches[f] = new
        got = tracker.advance(old, new)
        want = oracle_candidate(matches, last_index, quorum)
        assert got == want, (matches, last_index, quorum)
        # Emulate the node's commit + discard (term check always passes
        # here; discarding must never perturb later candidates).
        if got > commit:
            commit = got
            tracker.discard_through(commit)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_bookkeeping_stays_bounded_by_replication_lag(seed):
    """With discard_through applied, pending counters track the lag window,
    not the log length."""
    rng = np.random.default_rng(seed)
    t = CommitTracker(2)
    matches = {"a": 0, "b": 0, "c": 0, "d": 0}
    commit = 0
    top = 0
    for _ in range(500):
        top += 1
        for f in matches:
            if rng.random() < 0.5 and matches[f] < top:
                old = matches[f]
                matches[f] = old + 1
                got = t.advance(old, old + 1)
                if got > commit:
                    commit = got
                    t.discard_through(commit)
    lag = top - commit
    assert t.pending <= max(lag + 1, 1) * 2 + 8
