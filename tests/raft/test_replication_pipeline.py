"""Replication pipeline control: the inflight cap and stall recovery.

Regression coverage for a found-in-testing failure mode: without an
inflight bound, every append response to a still-behind follower spawned a
fresh resend, and under sustained load those send/response chains
multiplied without bound (leader CPU grew ~70× in 15 s).  The cap plus
stall detection keeps append traffic proportional to the log, while the
heartbeat-response catchup path still rescues followers whose acks were
lost across a pause.
"""

from repro.cluster.workload import OpenLoopDriver
from repro.raft.state_machine import kv_put
from tests.conftest import make_raft_cluster


def test_append_traffic_proportional_to_load():
    """Total append messages stay within a small multiple of commits."""
    c = make_raft_cluster(5, rtt_ms=50.0, with_cost_model=True)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    driver = OpenLoopDriver(c.loop, client, rps=200.0, rng=c.rngs.stream("load"))
    driver.start()
    c.run_for(10_000)
    driver.stop()
    c.run_for(2_000)
    commits = len(client.completed)
    appends = c.node(leader).metrics.appends_sent
    assert commits > 1_500
    # 4 followers; batching means appends per commit should stay low even
    # with per-proposal eager sends (the regression produced ~150×).
    assert appends < 12 * commits


def test_inflight_counter_returns_to_zero_when_idle():
    c = make_raft_cluster(3, rtt_ms=20.0)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    for i in range(30):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(5_000)  # drain completely
    node = c.node(leader)
    assert all(v == 0 for v in node._inflight_appends.values())
    assert all(node.match_index[p] == node.log.last_index for p in node.peers)


def test_proposals_respect_inflight_cap():
    """A burst of proposals may not put more than the cap in flight."""
    c = make_raft_cluster(3, rtt_ms=200.0)  # slow acks keep pipeline busy
    client = c.add_client("cl")
    leader = c.run_until_leader()
    c.run_for(500)
    for i in range(50):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(50)  # before any ack can return (RTT 200)
    node = c.node(leader)
    for peer in node.peers:
        assert node._inflight_appends[peer] <= node.MAX_INFLIGHT_APPENDS
    c.run_for(10_000)
    assert len(client.completed) == 50  # everything still commits


def test_stalled_pipeline_recovers_via_heartbeat_catchup():
    """Acks lost across a follower pause: inflight is stuck at the cap,
    yet the follower catches up once heartbeat responses resume."""
    c = make_raft_cluster(5, rtt_ms=50.0)
    client = c.add_client("cl")
    leader = c.run_until_leader()
    c.run_for(500)
    lagger = next(n for n in c.names if n != leader)
    c.node(lagger).pause()
    # Proposals while paused: sends to the lagger are dropped -> no acks.
    for i in range(30):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(4_000)
    node = c.node(leader)
    assert node.match_index[lagger] < node.log.last_index
    c.node(lagger).resume()
    c.run_for(6_000)  # stall threshold (1 s) passes; heartbeats rescue it
    assert node.match_index[lagger] == node.log.last_index
    assert c.node(lagger).state_machine.snapshot() == c.node(leader).state_machine.snapshot()
