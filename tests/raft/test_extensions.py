"""The §IV-E future-work extensions: heartbeat suppression under load and
the consolidated leader heartbeat timer."""

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.dynatune.policy import DynatunePolicy, StaticPolicy
from repro.raft.state_machine import kv_put
from repro.raft.types import RaftConfig, Role


def make_cluster(raft: RaftConfig, *, policy="static", seed=5, rtt_ms=20.0, n=5):
    factory = (
        (lambda name: StaticPolicy(election_timeout_ms=300.0, heartbeat_interval_ms=50.0))
        if policy == "static"
        else (lambda name: DynatunePolicy())
    )
    c = build_cluster(ClusterConfig(n_nodes=n, seed=seed, rtt_ms=rtt_ms, raft=raft), factory)
    c.start()
    return c


def drive_load(c, client, *, rps=200.0, duration_ms=10_000.0):
    from repro.cluster.workload import OpenLoopDriver

    driver = OpenLoopDriver(c.loop, client, rps=rps, rng=c.rngs.stream("load"))
    driver.start()
    c.run_for(duration_ms)
    driver.stop()
    return driver


# -- heartbeat suppression under load (§IV-E feature 1) -------------------- #


def test_suppression_reduces_heartbeats_under_load():
    counts = {}
    for suppress in (False, True):
        c = make_cluster(RaftConfig(suppress_heartbeats_under_load=suppress))
        client = c.add_client("cl")
        leader = c.run_until_leader()
        before = c.node(leader).metrics.heartbeats_sent
        drive_load(c, client)
        counts[suppress] = c.node(leader).metrics.heartbeats_sent - before
    # At 200 req/s each append resets the 50 ms heartbeat: most dedicated
    # heartbeats disappear.
    assert counts[True] < 0.35 * counts[False]


def test_suppression_keeps_followers_quiet():
    c = make_cluster(RaftConfig(suppress_heartbeats_under_load=True))
    client = c.add_client("cl")
    c.run_until_leader()
    t0 = c.loop.now
    drive_load(c, client)
    c.run_for(3_000)
    timeouts = [r for r in c.trace.of_kind("election_timeout") if r.time > t0]
    assert timeouts == []  # replication kept every election timer fresh
    assert len(client.completed) > 0


def test_suppression_resumes_heartbeats_when_idle():
    c = make_cluster(RaftConfig(suppress_heartbeats_under_load=True))
    client = c.add_client("cl")
    leader = c.run_until_leader()
    drive_load(c, client, duration_ms=3_000.0)
    c.run_for(1_000)
    before = c.node(leader).metrics.heartbeats_sent
    c.run_for(5_000)  # idle: dedicated heartbeats must flow again
    idle_rate = (c.node(leader).metrics.heartbeats_sent - before) / 5.0
    # 4 followers at 50 ms -> ~80/s.
    assert idle_rate > 40.0


def test_suppression_off_by_default():
    assert RaftConfig().suppress_heartbeats_under_load is False
    assert RaftConfig().consolidated_heartbeat_timer is False


# -- consolidated heartbeat timer (§IV-E feature 2) -------------------------- #


def test_consolidated_timer_uses_single_timer():
    c = make_cluster(RaftConfig(consolidated_heartbeat_timer=True))
    leader = c.run_until_leader()
    c.run_for(1_000)
    names = c.node(leader).timers.names()
    assert "hb" in names
    assert not any(n.startswith("hb/") for n in names)


def test_consolidated_timer_heartbeats_all_followers():
    c = make_cluster(RaftConfig(consolidated_heartbeat_timer=True))
    leader = c.run_until_leader()
    c.run_for(3_000)
    for name in c.names:
        if name != leader:
            assert c.node(name).metrics.heartbeats_received > 10


def test_consolidated_timer_beats_at_min_h_with_dynatune():
    """On the AWS geo topology the tuned h differs per path; the single
    timer must beat at (roughly) the smallest one for every follower."""
    c = build_cluster(
        ClusterConfig(
            n_nodes=5,
            seed=5,
            topology="aws",
            raft=RaftConfig(consolidated_heartbeat_timer=True),
        ),
        lambda name: DynatunePolicy(),
    )
    c.start()
    leader = c.run_until_leader()
    c.run_for(20_000)
    lp = c.node(leader).policy
    intervals = [lp.heartbeat_interval_ms(p) for p in c.node(leader).peers]
    assert max(intervals) > 1.3 * min(intervals)  # paths genuinely differ
    t0 = c.loop.now
    before = {
        n: c.node(n).metrics.heartbeats_received for n in c.names if n != leader
    }
    c.run_for(10_000)
    rates = {
        n: (c.node(n).metrics.heartbeats_received - before[n]) / 10.0
        for n in before
    }
    expected = 1000.0 / min(intervals) / 1000.0 * 10.0  # beats per second * ...
    # All followers receive at (roughly) the same min-h driven rate.
    vals = sorted(rates.values())
    assert vals[-1] - vals[0] < 0.35 * vals[-1]


def test_consolidated_timer_failover_still_works():
    from repro.cluster.faults import pause_for

    c = make_cluster(RaftConfig(consolidated_heartbeat_timer=True))
    old = c.run_until_leader()
    c.run_for(1_000)
    pause_for(c.loop, c.node(old), 5_000.0)
    new = c.run_until_leader(exclude=old, timeout_ms=20_000)
    assert new != old
    c.run_for(6_000)
    assert c.node(old).role is Role.FOLLOWER


def test_both_extensions_compose():
    c = make_cluster(
        RaftConfig(
            suppress_heartbeats_under_load=True, consolidated_heartbeat_timer=True
        )
    )
    client = c.add_client("cl")
    c.run_until_leader()
    for i in range(20):
        client.submit(kv_put(f"k{i}", i))
    c.run_for(5_000)
    assert len(client.completed) == 20
    snaps = [c.node(n).state_machine.snapshot() for n in c.names]
    assert all(s == snaps[0] for s in snaps)
