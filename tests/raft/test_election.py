"""Leader election: liveness, uniqueness, failover, pre-vote, leases."""

import pytest

from repro.cluster.faults import pause_for
from repro.raft.types import Role
from tests.conftest import make_raft_cluster


def test_single_node_cluster_elects_itself():
    c = make_raft_cluster(1)
    leader = c.run_until_leader(timeout_ms=5000)
    assert leader == "n1"
    assert c.node("n1").current_term == 1


def test_three_node_cluster_elects_exactly_one_leader():
    c = make_raft_cluster(3)
    c.run_until_leader()
    c.run_for(2000)
    leaders = [n.name for n in c.nodes.values() if n.role is Role.LEADER]
    assert len(leaders) == 1


def test_five_node_cluster_elects_leader():
    c = make_raft_cluster(5)
    assert c.run_until_leader() in c.names


def test_all_followers_learn_the_leader():
    c = make_raft_cluster(5)
    leader = c.run_until_leader()
    c.run_for(2000)
    for node in c.nodes.values():
        assert node.leader_id == leader


def test_leader_stable_without_faults():
    c = make_raft_cluster(5)
    leader = c.run_until_leader()
    term = c.node(leader).current_term
    c.run_for(30_000)
    assert c.leader() == leader
    assert c.node(leader).current_term == term


def test_failover_elects_new_leader_with_higher_term():
    c = make_raft_cluster(5)
    old = c.run_until_leader()
    old_term = c.node(old).current_term
    c.run_for(1000)
    pause_for(c.loop, c.node(old), 10_000.0)
    new = c.run_until_leader(exclude=old, timeout_ms=20_000)
    assert new != old
    assert c.node(new).current_term > old_term


def test_paused_leader_rejoins_as_follower():
    c = make_raft_cluster(5)
    old = c.run_until_leader()
    c.run_for(1000)
    pause_for(c.loop, c.node(old), 5_000.0)
    new = c.run_until_leader(exclude=old, timeout_ms=20_000)
    c.run_for(8_000)
    assert c.node(old).role is Role.FOLLOWER
    assert c.node(old).leader_id == new
    assert c.node(old).current_term == c.node(new).current_term


def test_majority_loss_prevents_election():
    c = make_raft_cluster(5)
    leader = c.run_until_leader()
    c.run_for(500)
    # Pause leader plus two followers: remaining two cannot form quorum.
    followers = [n for n in c.names if n != leader]
    for name in [leader] + followers[:2]:
        c.node(name).pause()
    c.run_for(20_000)
    assert c.leader() is None
    # The two survivors must not have become leader at any point.
    later_leaders = [
        r
        for r in c.trace.of_kind("become_leader")
        if r.time > 500 and r.node in followers[2:]
    ]
    assert later_leaders == []


def test_cluster_recovers_after_majority_restored():
    c = make_raft_cluster(5)
    leader = c.run_until_leader()
    c.run_for(500)
    followers = [n for n in c.names if n != leader]
    for name in [leader] + followers[:2]:
        c.node(name).pause()
    c.run_for(10_000)
    for name in followers[:2]:
        c.node(name).resume()
    assert c.run_until_leader(timeout_ms=20_000) is not None


def test_minority_partition_cannot_elect():
    c = make_raft_cluster(5)
    leader = c.run_until_leader()
    c.run_for(500)
    followers = [n for n in c.names if n != leader]
    minority = {leader, followers[0]}
    c.network.set_partitions([minority, set(followers[1:])])
    majority_leader = c.run_until_leader(exclude=leader, timeout_ms=20_000)
    assert majority_leader in followers[1:]
    c.run_for(5_000)
    # Old leader stepped down (quorum check) and nobody in the minority won.
    assert c.node(leader).role is not Role.LEADER
    minority_wins = [
        r
        for r in c.trace.of_kind("become_leader")
        if r.node in minority and r.time > 500
    ]
    assert minority_wins == []


def test_heal_partition_single_leader_again():
    c = make_raft_cluster(5)
    leader = c.run_until_leader()
    c.run_for(500)
    followers = [n for n in c.names if n != leader]
    c.network.set_partitions([{leader, followers[0]}, set(followers[1:])])
    c.run_until_leader(exclude=leader, timeout_ms=20_000)
    c.run_for(3_000)
    c.network.clear_partitions()
    c.run_for(5_000)
    leaders = [n for n in c.nodes.values() if n.role is Role.LEADER]
    assert len(leaders) == 1


def test_election_safety_no_two_leaders_per_term():
    c = make_raft_cluster(5)
    c.run_until_leader()
    for _ in range(3):
        leader = c.leader()
        if leader is not None:
            pause_for(c.loop, c.node(leader), 4_000.0)
            c.run_until_leader(exclude=leader, timeout_ms=20_000)
        c.run_for(6_000)
    by_term = {}
    for rec in c.trace.of_kind("become_leader"):
        term = rec.get("term")
        by_term.setdefault(term, set()).add(rec.node)
    for term, nodes in by_term.items():
        assert len(nodes) == 1, f"two leaders in term {term}: {nodes}"
    assert not c.trace.of_kind("safety_violation_two_leaders")


def test_detection_trace_contains_randomized_timeout():
    c = make_raft_cluster(3)
    leader = c.run_until_leader()
    c.run_for(500)
    pause_for(c.loop, c.node(leader), 5_000.0)
    c.run_until_leader(exclude=leader, timeout_ms=20_000)
    timeouts = c.trace.of_kind("election_timeout")
    assert timeouts
    rto = timeouts[-1].get("randomized_timeout_ms")
    # StaticPolicy Et=300 -> randomized in [300, 600)
    assert 300.0 <= rto < 600.0


def test_node_start_twice_rejected():
    c = make_raft_cluster(1)
    with pytest.raises(RuntimeError):
        c.node("n1").start()


def test_cluster_start_twice_rejected():
    c = make_raft_cluster(1)
    with pytest.raises(RuntimeError):
        c.start()
