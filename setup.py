"""Setup shim: enables legacy editable installs on environments without
the `wheel` package (this machine is offline; setuptools < 70 cannot build
PEP 660 editable wheels without it)."""
from setuptools import setup

setup()
